package obs

import (
	"fmt"
	"sort"

	"hpmvm/internal/snap"
)

// Snapshot/Restore implement snap.Checkpointable for the observer: the
// owned counter values (by name), the trace ring contents and drop
// accounting, and the phase timelines. Sampled counters are closures
// over producer stats and are not serialized — restoring the producers
// restores their values. Restore runs LAST in core.System.Restore so
// that any events or counter updates fired while earlier components
// replayed (e.g. the VM's recompile-log replay emitting EvRecompile)
// are overwritten with the origin's exact trace.

const (
	snapComponent = "obs"
	snapVersion   = 1
)

// Snapshot serializes the observer's state.
func (o *Observer) Snapshot() snap.ComponentState {
	o.mu.Lock()
	defer o.mu.Unlock()
	var w snap.Writer

	names := make([]string, 0, len(o.entries))
	for _, e := range o.entries {
		if e.owned != nil {
			names = append(names, e.name)
		}
	}
	sort.Strings(names)
	w.U64(uint64(len(names)))
	for _, name := range names {
		w.String(name)
		w.U64(o.entries[o.byName[name]].owned.Value())
	}

	events := o.trace.events()
	w.U64(uint64(len(o.trace.buf)))
	w.U64(o.trace.emitted)
	w.U64(o.trace.dropped)
	w.U64(uint64(len(events)))
	for _, e := range events {
		w.U64(e.Cycle)
		w.U64(uint64(e.Kind))
		w.U64(e.Arg0)
		w.U64(e.Arg1)
		w.U64(e.Arg2)
	}

	phaseNames := make([]string, 0, len(o.phases))
	for _, p := range o.phases {
		phaseNames = append(phaseNames, p.name)
	}
	sort.Strings(phaseNames)
	w.U64(uint64(len(phaseNames)))
	for _, name := range phaseNames {
		p := o.phases[o.phaseByName[name]]
		w.String(name)
		w.U64(p.count)
		w.U64(p.cycles)
		w.Bool(p.open)
		w.U64(p.start)
	}
	return snap.ComponentState{Component: snapComponent, Version: snapVersion, Data: w.Bytes()}
}

// Restore overwrites the observer's state. Every owned counter named in
// the snapshot must already be registered as owned (registration is a
// boot-time act, and restore requires an identically booted system);
// owned counters absent from the snapshot are reset to zero.
func (o *Observer) Restore(st snap.ComponentState) error {
	if err := snap.Check(st, snapComponent, snapVersion); err != nil {
		return err
	}
	r := snap.NewReader(st.Data)
	nCounters := r.U64()
	counters := make(map[string]uint64, nCounters)
	for i := uint64(0); i < nCounters && r.Err() == nil; i++ {
		name := r.String()
		counters[name] = r.U64()
	}
	capacity := r.U64()
	emitted := r.U64()
	dropped := r.U64()
	nEvents := r.U64()
	if r.Err() == nil && nEvents > capacity {
		return fmt.Errorf("obs: %w: %d events exceed ring capacity %d", snap.ErrDecode, nEvents, capacity)
	}
	events := make([]Event, 0, nEvents)
	for i := uint64(0); i < nEvents && r.Err() == nil; i++ {
		var e Event
		e.Cycle = r.U64()
		e.Kind = EventKind(r.U64())
		e.Arg0 = r.U64()
		e.Arg1 = r.U64()
		e.Arg2 = r.U64()
		events = append(events, e)
	}
	type phaseState struct {
		name   string
		count  uint64
		cycles uint64
		open   bool
		start  uint64
	}
	nPhases := r.U64()
	phases := make([]phaseState, 0, nPhases)
	for i := uint64(0); i < nPhases && r.Err() == nil; i++ {
		var p phaseState
		p.name = r.String()
		p.count = r.U64()
		p.cycles = r.U64()
		p.open = r.Bool()
		p.start = r.U64()
		phases = append(phases, p)
	}
	if err := r.Close(); err != nil {
		return err
	}

	o.mu.Lock()
	defer o.mu.Unlock()
	if uint64(len(o.trace.buf)) != capacity {
		return fmt.Errorf("obs: %w: trace capacity %d, snapshot capacity %d",
			snap.ErrDecode, len(o.trace.buf), capacity)
	}
	for name := range counters {
		i, ok := o.byName[name]
		if !ok || o.entries[i].owned == nil {
			return fmt.Errorf("obs: %w: counter %q not registered as owned", snap.ErrDecode, name)
		}
	}
	for _, e := range o.entries {
		if e.owned != nil {
			e.owned.v.Store(counters[e.name])
		}
	}
	o.trace.start = 0
	o.trace.n = len(events)
	copy(o.trace.buf, events)
	o.trace.emitted = emitted
	o.trace.dropped = dropped
	for _, p := range o.phases {
		p.count, p.cycles, p.open, p.start = 0, 0, false, 0
	}
	for _, ps := range phases {
		p := o.phase(ps.name)
		p.count = ps.count
		p.cycles = ps.cycles
		p.open = ps.open
		p.start = ps.start
	}
	return nil
}
