package serve

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.add("a", []byte("A"))
	c.add("b", []byte("B"))
	// Touch a so b is the LRU victim.
	if body, ok := c.get("a"); !ok || string(body) != "A" {
		t.Fatalf("get(a) = %q, %t", body, ok)
	}
	if n := c.add("c", []byte("C")); n != 1 {
		t.Fatalf("add over capacity evicted %d entries, want 1", n)
	}
	if _, ok := c.get("b"); ok {
		t.Error("LRU victim b still cached")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("entry %s evicted wrongly", k)
		}
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Refreshing an existing key replaces the body without eviction.
	if n := c.add("a", []byte("A2")); n != 0 {
		t.Errorf("refresh evicted %d entries", n)
	}
	if body, _ := c.get("a"); string(body) != "A2" {
		t.Errorf("refresh kept stale body %q", body)
	}
}

// TestRunCachedLeaderCancelRetry orchestrates the single-flight retry:
// a waiter piles onto a leader that then aborts on its own context; the
// waiter must retry, become the new leader, succeed, and cache.
func TestRunCachedLeaderCancelRetry(t *testing.T) {
	s := New(Config{Jobs: 1, QueueDepth: 1, CacheEntries: 4})
	const key = "test-key"

	type out struct {
		body []byte
		disp string
		err  error
	}
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	aCh := make(chan out, 1)
	go func() {
		body, disp, err := s.runCached(context.Background(), key, func(context.Context) ([]byte, error) {
			close(leaderIn)
			<-leaderGo
			return nil, context.Canceled
		})
		aCh <- out{body, disp, err}
	}()
	<-leaderIn

	bCh := make(chan out, 1)
	go func() {
		body, disp, err := s.runCached(context.Background(), key, func(context.Context) ([]byte, error) {
			return []byte("ok"), nil
		})
		bCh <- out{body, disp, err}
	}()
	// Give B a moment to park on the leader's done channel; if the
	// sleep races and B arrives after the leader failed, B simply
	// becomes the first leader itself — same outcome, no flake.
	time.Sleep(20 * time.Millisecond)
	close(leaderGo)

	a := <-aCh
	if !errors.Is(a.err, context.Canceled) {
		t.Fatalf("cancelled leader error = %v", a.err)
	}
	b := <-bCh
	if b.err != nil || string(b.body) != "ok" || b.disp != "miss" {
		t.Fatalf("retryer got (%q, %q, %v), want (ok, miss, nil)", b.body, b.disp, b.err)
	}

	s.mu.Lock()
	body, ok := s.cache.get(key)
	s.mu.Unlock()
	if !ok || string(body) != "ok" {
		t.Fatalf("retryer's success not cached: %q, %t", body, ok)
	}
	if body, disp, err := s.runCached(context.Background(), key, nil); err != nil || disp != "hit" || string(body) != "ok" {
		t.Fatalf("subsequent call = (%q, %q, %v), want cached hit", body, disp, err)
	}
}

// TestRunCachedWaiterOwnContext pins that a waiter whose own context
// dies stops waiting immediately instead of riding out the leader.
func TestRunCachedWaiterOwnContext(t *testing.T) {
	s := New(Config{Jobs: 1, QueueDepth: 1, CacheEntries: 4})
	const key = "waiter-key"

	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	aCh := make(chan error, 1)
	go func() {
		_, _, err := s.runCached(context.Background(), key, func(context.Context) ([]byte, error) {
			close(leaderIn)
			<-leaderGo
			return []byte("late"), nil
		})
		aCh <- err
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	bCh := make(chan error, 1)
	go func() {
		_, _, err := s.runCached(ctx, key, func(context.Context) ([]byte, error) {
			t.Error("waiter executed despite an in-flight leader")
			return nil, nil
		})
		bCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-bCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter error = %v, want context.Canceled", err)
	}

	close(leaderGo)
	if err := <-aCh; err != nil {
		t.Fatalf("leader error = %v", err)
	}
	s.mu.Lock()
	body, ok := s.cache.get(key)
	s.mu.Unlock()
	if !ok || !bytes.Equal(body, []byte("late")) {
		t.Error("leader success not cached after waiter left")
	}
}

// TestRunCachedSharesDeterministicFailure pins that a non-cancellation
// failure is shared with waiters (every identical request would fail
// identically) but never cached, so a later request re-executes.
func TestRunCachedSharesDeterministicFailure(t *testing.T) {
	s := New(Config{Jobs: 1, QueueDepth: 1, CacheEntries: 4})
	const key = "fail-key"
	boom := errors.New("boom")

	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	aCh := make(chan error, 1)
	go func() {
		_, _, err := s.runCached(context.Background(), key, func(context.Context) ([]byte, error) {
			close(leaderIn)
			<-leaderGo
			return nil, boom
		})
		aCh <- err
	}()
	<-leaderIn

	bCh := make(chan error, 1)
	go func() {
		_, _, err := s.runCached(context.Background(), key, func(context.Context) ([]byte, error) {
			return nil, boom
		})
		bCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(leaderGo)

	if err := <-aCh; !errors.Is(err, boom) {
		t.Fatalf("leader error = %v", err)
	}
	if err := <-bCh; !errors.Is(err, boom) {
		t.Fatalf("waiter error = %v, want the shared failure", err)
	}
	s.mu.Lock()
	_, ok := s.cache.get(key)
	inflight := len(s.inflight)
	s.mu.Unlock()
	if ok {
		t.Error("failure was cached")
	}
	if inflight != 0 {
		t.Errorf("%d stale inflight entries", inflight)
	}

	// A later request re-executes and may now succeed.
	body, disp, err := s.runCached(context.Background(), key, func(context.Context) ([]byte, error) {
		return []byte("recovered"), nil
	})
	if err != nil || disp != "miss" || string(body) != "recovered" {
		t.Fatalf("recovery call = (%q, %q, %v)", body, disp, err)
	}
}
