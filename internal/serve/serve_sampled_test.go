package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"hpmvm/internal/api"
)

// TestServeSampled pins the sampled-serve contract: a sampled=true
// request runs the two-lane simulator and answers with an Estimated
// block (point estimates plus 95% confidence intervals), caches under
// its own key — never aliasing the exact run's result — and is exactly
// as deterministic as an exact run: repeats are byte-identical, cached
// or cold, even across fresh server instances.
func TestServeSampled(t *testing.T) {
	s := New(Config{Jobs: 2, QueueDepth: 8, CacheEntries: 8})
	h := s.Handler()

	const exactBody = `{"workload":"serve_tiny","seed":3}`
	const sampledBody = `{"workload":"serve_tiny","seed":3,"sampled":true}`

	exact := doReq(h, nil, http.MethodPost, "/run", exactBody)
	sampled := doReq(h, nil, http.MethodPost, "/run", sampledBody)
	if exact.Code != http.StatusOK || sampled.Code != http.StatusOK {
		t.Fatalf("statuses %d / %d: %s / %s", exact.Code, sampled.Code,
			exact.Body.String(), sampled.Body.String())
	}

	// Distinct simulations, distinct content addresses.
	if ek, sk := exact.Header().Get("X-Hpmvmd-Key"), sampled.Header().Get("X-Hpmvmd-Key"); ek == sk {
		t.Errorf("sampled request shares the exact request's cache key %s", ek)
	}
	if d := sampled.Header().Get("X-Hpmvmd-Cache"); d != "miss" {
		t.Errorf("first sampled request disposition %q, want miss (must not hit the exact entry)", d)
	}

	var eresp, sresp RunResponse
	if err := json.Unmarshal(exact.Body.Bytes(), &eresp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sampled.Body.Bytes(), &sresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Sampled || eresp.Estimated != nil {
		t.Errorf("exact response carries sampled fields: sampled=%t estimated=%v", eresp.Sampled, eresp.Estimated)
	}
	if !sresp.Sampled || sresp.Estimated == nil {
		t.Fatalf("sampled response missing its Estimated block: %s", sampled.Body.String())
	}
	est := sresp.Estimated
	if est.Cycles <= 0 || est.Regions < 1 {
		t.Errorf("degenerate estimate: cycles %.0f from %d regions", est.Cycles, est.Regions)
	}
	if est.CyclesLo > est.Cycles || est.CyclesHi < est.Cycles {
		t.Errorf("95%% interval [%.0f, %.0f] does not bracket estimate %.0f",
			est.CyclesLo, est.CyclesHi, est.Cycles)
	}
	if est.CyclesLo < float64(est.ServiceCycles) {
		t.Errorf("interval lower bound %.0f below exactly counted service cycles %d",
			est.CyclesLo, est.ServiceCycles)
	}
	// Functional warming preserves the architectural stream: the sampled
	// run computes the same answer the exact run does.
	if len(sresp.Results) != 1 || sresp.Results[0] != eresp.Results[0] {
		t.Errorf("sampled results %v differ from exact %v", sresp.Results, eresp.Results)
	}

	// Repeat: cache hit, byte-identical.
	again := doReq(h, nil, http.MethodPost, "/run", sampledBody)
	if again.Code != http.StatusOK || again.Header().Get("X-Hpmvmd-Cache") != "hit" {
		t.Fatalf("sampled repeat: status %d disposition %q, want 200/hit",
			again.Code, again.Header().Get("X-Hpmvmd-Cache"))
	}
	if !bytes.Equal(again.Body.Bytes(), sampled.Body.Bytes()) {
		t.Error("cached sampled body differs from cold body")
	}

	// Determinism across instances: a fresh server (fresh engine, fresh
	// cache) must produce the identical bytes for the identical request.
	fresh := doReq(New(Config{}).Handler(), nil, http.MethodPost, "/run", sampledBody)
	if fresh.Code != http.StatusOK {
		t.Fatalf("fresh-server sampled run: status %d: %s", fresh.Code, fresh.Body.String())
	}
	if !bytes.Equal(fresh.Body.Bytes(), sampled.Body.Bytes()) {
		t.Error("sampled response differs across fresh server instances")
	}
}

// TestServeSampledValidation pins the request-level guard: sampled
// systems refuse Snapshot, so sampled=true combined with
// warm_start_cycles must bounce as a 400 before any simulation starts.
func TestServeSampledValidation(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	rr := doReq(h, nil, http.MethodPost, "/run",
		`{"workload":"serve_tiny","seed":1,"sampled":true,"warm_start_cycles":100000}`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("sampled+warm_start: status %d, want 400: %s", rr.Code, rr.Body.String())
	}
	var eb api.Error
	if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil || eb.Message == "" {
		t.Fatalf("400 body is not the JSON error envelope: %q", rr.Body.String())
	}
	if eb.Code != api.CodeBadRequest {
		t.Errorf("400 code = %q, want %q", eb.Code, api.CodeBadRequest)
	}
	if got := s.cExecuted.Value(); got != 0 {
		t.Errorf("rejected request still executed %d runs", got)
	}
}
