package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hpmvm/internal/api"
)

// collectStream drives one request through h and decodes the SSE
// frames.
func collectStream(t *testing.T, h http.Handler, body string) []api.StreamEvent {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPost, api.PathStream, strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if ct := rr.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q body %s", ct, rr.Body.String())
	}
	dec := api.NewStreamDecoder(rr.Body)
	var frames []api.StreamEvent
	for {
		ev, err := dec.Next()
		if err != nil {
			break
		}
		frames = append(frames, ev)
	}
	return frames
}

// TestStreamResultByteIdentical pins the streaming determinism
// contract: the result frame, with the trailing newline restored, is
// byte-for-byte the /v1/run response body — on a single server AND on
// a fleet coordinator.
func TestStreamResultByteIdentical(t *testing.T) {
	srv := New(Config{Jobs: 1})
	_, _, fh := newTestFleet(t, 2, Config{Jobs: 1})

	const body = `{"workload":"serve_tiny","seed":9,"monitoring":true,"interval":1000}`
	want := doReq(srv.Handler(), nil, http.MethodPost, api.PathRun, body)
	if want.Code != http.StatusOK {
		t.Fatalf("one-shot run: %d %s", want.Code, want.Body.String())
	}

	for name, h := range map[string]http.Handler{"server": srv.Handler(), "fleet": fh} {
		frames := collectStream(t, h, body)
		if len(frames) < 3 {
			t.Fatalf("%s: %d frames, want at least queued+meta+result", name, len(frames))
		}
		if frames[0].Event != api.EventQueued {
			t.Fatalf("%s: first frame %q, want %q", name, frames[0].Event, api.EventQueued)
		}
		var q api.StreamQueued
		if err := json.Unmarshal(frames[0].Data, &q); err != nil || q.Key == "" || q.Workload != "serve_tiny" {
			t.Errorf("%s: queued frame = %s (err %v)", name, frames[0].Data, err)
		}
		meta := frames[len(frames)-2]
		res := frames[len(frames)-1]
		if meta.Event != api.EventMeta || res.Event != api.EventResult {
			t.Fatalf("%s: trailing frames %q,%q want meta,result", name, meta.Event, res.Event)
		}
		var m api.StreamMeta
		if err := json.Unmarshal(meta.Data, &m); err != nil || m.Key != q.Key {
			t.Errorf("%s: meta frame = %s (err %v)", name, meta.Data, err)
		}
		if name == "fleet" && m.Worker == "" {
			t.Error("fleet meta frame lacks worker")
		}
		got := append(append([]byte{}, res.Data...), '\n')
		if !bytes.Equal(got, want.Body.Bytes()) {
			t.Errorf("%s: stream result differs from /v1/run body\nstream: %s\nrun:    %s", name, got, want.Body.String())
		}
	}
}

// TestStreamHeartbeat: a run longer than the heartbeat interval emits
// progress frames between queued and the result.
func TestStreamHeartbeat(t *testing.T) {
	srv := New(Config{Jobs: 1, StreamHeartbeat: time.Millisecond})
	frames := collectStream(t, srv.Handler(), `{"workload":"serve_tiny","seed":10}`)
	progress := 0
	for _, f := range frames {
		if f.Event == api.EventProgress {
			progress++
			var p api.StreamProgress
			if err := json.Unmarshal(f.Data, &p); err != nil || p.ElapsedMS < 0 {
				t.Errorf("progress frame = %s (err %v)", f.Data, err)
			}
		}
	}
	if progress == 0 {
		t.Error("no progress frames despite 1ms heartbeat")
	}
}

// TestStreamErrors: pre-admission failures answer as plain JSON (the
// stream never opens); run-time failures arrive as a terminal error
// frame inside the stream.
func TestStreamErrors(t *testing.T) {
	srv := New(Config{Jobs: 1})
	h := srv.Handler()

	// Unknown workload: rejected before the stream opens.
	req, _ := http.NewRequest(http.MethodPost, api.PathStream, strings.NewReader(`{"workload":"nope"}`))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusNotFound || !strings.Contains(rr.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("pre-admission stream error: %d %q %s", rr.Code, rr.Header().Get("Content-Type"), rr.Body.String())
	}
	var eb api.Error
	if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil || eb.Code != api.CodeUnknownWorkload {
		t.Errorf("pre-admission envelope = %q (err %v)", rr.Body.String(), err)
	}

	// Draining: valid request, refused at admission — arrives as an
	// in-stream error frame carrying the envelope.
	srv.Drain()
	frames := collectStream(t, h, `{"workload":"serve_tiny","seed":1}`)
	if len(frames) == 0 {
		t.Fatal("no frames from draining stream")
	}
	last := frames[len(frames)-1]
	if last.Event != api.EventError {
		t.Fatalf("terminal frame %q, want error", last.Event)
	}
	if err := json.Unmarshal(last.Data, &eb); err != nil || eb.Code != api.CodeDraining {
		t.Errorf("in-stream error frame = %s (err %v)", last.Data, err)
	}
}
