package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hpmvm/internal/api"
	"hpmvm/internal/opt"
)

// This file is the fleet coordinator: the same /v1 wire contract as a
// single Server, served by fanning requests out over N worker backends
// — in-process Servers or remote hpmvmd -worker processes reached
// through internal/client; the coordinator cannot tell them apart
// because both speak api.RunResult.
//
// Routing (DESIGN.md §13):
//
//   - Every request has a sticky key: the warm-start snapshot key when
//     warm_start_cycles is set, else the result-cache key. Rendezvous
//     hashing over (sticky key, worker name) ranks the workers; the
//     top-ranked healthy worker is the request's home. Identical
//     requests therefore always meet the same worker's result cache,
//     and every request sharing a warm-start prefix lands on the
//     worker whose snapshot LRU holds that prefix.
//   - When a non-warm home worker refuses with queue_full (or is
//     unreachable), the request is stolen: retried on the remaining
//     healthy workers in least-loaded order. Warm requests are never
//     stolen — rebuilding a multi-megabyte snapshot on a second worker
//     costs more than waiting out the 429 — so the owner's refusal
//     propagates with its Retry-After.
//   - Because runs are deterministic and workers share no mutable
//     state, a steal can never change a response byte; hpmvmbench's
//     per-worker probe and TestFleetByteIdentical pin this.
//
// Byte-identity: the coordinator relays worker response bodies
// verbatim (api.RunResult.Body), adding only the X-Hpmvmd-Worker
// header — a fleet of any size answers byte-identically to one Server.

// Backend is one worker the coordinator can route to. *client.Client
// (remote worker process) and *LocalBackend (in-process Server)
// implement it.
type Backend interface {
	// Name identifies the worker in routing, headers and statsz.
	Name() string
	// Run executes one request and returns the exact response bytes
	// plus header metadata. Refusals arrive as *api.Error (the worker's
	// envelope, code intact); any other error is a transport failure.
	Run(ctx context.Context, req api.Request) (*api.RunResult, error)
	// Statsz fetches the worker's own statsz snapshot.
	Statsz(ctx context.Context) (api.Statsz, error)
	// Healthz reports liveness.
	Healthz(ctx context.Context) error
	// Workloads lists the worker's registry.
	Workloads(ctx context.Context) ([]api.WorkloadInfo, error)
}

// LocalBackend adapts an in-process *Server to the Backend interface
// (the "-fleet inprocess" topology: worker pools instead of worker
// processes, behind the same interface).
type LocalBackend struct {
	name string
	srv  *Server
}

// NewLocalBackend wraps srv as a named backend.
func NewLocalBackend(name string, srv *Server) *LocalBackend {
	return &LocalBackend{name: name, srv: srv}
}

// Name implements Backend.
func (l *LocalBackend) Name() string { return l.name }

// Server returns the wrapped server (the supervisor drains it on
// shutdown).
func (l *LocalBackend) Server() *Server { return l.srv }

// Run implements Backend; errors are wrapped in the api.Error envelope
// so the coordinator dispatches on codes exactly as it does for remote
// workers.
func (l *LocalBackend) Run(ctx context.Context, req api.Request) (*api.RunResult, error) {
	res, err := l.srv.RunBytes(ctx, req)
	if err != nil {
		return nil, toAPIError(err)
	}
	return res, nil
}

// Statsz implements Backend.
func (l *LocalBackend) Statsz(context.Context) (api.Statsz, error) { return l.srv.Stats(), nil }

// Healthz implements Backend.
func (l *LocalBackend) Healthz(context.Context) error {
	l.srv.mu.Lock()
	draining := l.srv.draining
	l.srv.mu.Unlock()
	if draining {
		return ErrDraining
	}
	return nil
}

// Workloads implements Backend.
func (l *LocalBackend) Workloads(context.Context) ([]api.WorkloadInfo, error) {
	return l.srv.Workloads(), nil
}

// FleetConfig tunes a Fleet.
type FleetConfig struct {
	// Backends are the workers; at least one is required.
	Backends []Backend
	// StreamHeartbeat is the /v1/stream progress interval (0 = 1s).
	StreamHeartbeat time.Duration
	// HealthInterval is the background health-probe period (0 = 2s,
	// negative = no background probing; routing failures still mark
	// workers unhealthy inline, and a later probe-free success path
	// revives them only via RouteAll fallback).
	HealthInterval time.Duration
	// StatszTimeout bounds one worker's statsz fetch (0 = 2s).
	StatszTimeout time.Duration
}

// Fleet is the coordinator. Create with NewFleet, mount Handler on an
// http.Server, Close when done.
type Fleet struct {
	cfg      FleetConfig
	backends []Backend
	resolver *Resolver

	healthy  []atomic.Bool
	inflight []atomic.Int64
	draining atomic.Bool

	cTotal    atomic.Uint64
	cSticky   atomic.Uint64
	cPinned   atomic.Uint64
	cStolen   atomic.Uint64
	cRejected atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
}

// NewFleet builds a coordinator over cfg.Backends and starts the
// background health loop.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("serve: fleet needs at least one backend")
	}
	seen := make(map[string]bool, len(cfg.Backends))
	for _, b := range cfg.Backends {
		if seen[b.Name()] {
			return nil, fmt.Errorf("serve: duplicate fleet backend name %q", b.Name())
		}
		seen[b.Name()] = true
	}
	if cfg.StreamHeartbeat <= 0 {
		cfg.StreamHeartbeat = time.Second
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.StatszTimeout <= 0 {
		cfg.StatszTimeout = 2 * time.Second
	}
	f := &Fleet{
		cfg:      cfg,
		backends: cfg.Backends,
		resolver: newResolver(),
		healthy:  make([]atomic.Bool, len(cfg.Backends)),
		inflight: make([]atomic.Int64, len(cfg.Backends)),
		stop:     make(chan struct{}),
	}
	for i := range f.healthy {
		f.healthy[i].Store(true)
	}
	if cfg.HealthInterval > 0 {
		go f.healthLoop()
	}
	return f, nil
}

// Close stops the background health loop.
func (f *Fleet) Close() { f.stopOnce.Do(func() { close(f.stop) }) }

// Drain stops admitting new runs and drains every in-process backend;
// remote workers are drained by their own SIGTERM (the supervisor
// forwards it).
func (f *Fleet) Drain() {
	f.draining.Store(true)
	for _, b := range f.backends {
		if lb, ok := b.(*LocalBackend); ok {
			lb.Server().Drain()
		}
	}
}

// healthLoop probes every backend and flips the healthy bits; a worker
// marked unhealthy by an inline transport failure is revived here once
// it answers again (e.g. after the supervisor restarted it).
func (f *Fleet) healthLoop() {
	ticker := time.NewTicker(f.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
			for i, b := range f.backends {
				ctx, cancel := context.WithTimeout(context.Background(), f.cfg.HealthInterval)
				err := b.Healthz(ctx)
				cancel()
				f.healthy[i].Store(err == nil)
			}
		}
	}
}

// rendezvous ranks backend indices for key: highest hash first. Every
// coordinator instance computes the same ranking, so routing is stable
// across restarts and across coordinators.
func (f *Fleet) rendezvous(key string) []int {
	type rank struct {
		idx int
		h   uint64
	}
	ranks := make([]rank, len(f.backends))
	for i, b := range f.backends {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0})
		h.Write([]byte(b.Name()))
		ranks[i] = rank{i, h.Sum64()}
	}
	sort.Slice(ranks, func(a, b int) bool {
		if ranks[a].h != ranks[b].h {
			return ranks[a].h > ranks[b].h
		}
		return ranks[a].idx < ranks[b].idx
	})
	out := make([]int, len(ranks))
	for i, r := range ranks {
		out[i] = r.idx
	}
	return out
}

// backendByName resolves a HeaderRoute pin.
func (f *Fleet) backendByName(name string) (int, bool) {
	for i, b := range f.backends {
		if b.Name() == name {
			return i, true
		}
	}
	return -1, false
}

// runOn executes req on backend i with inflight accounting.
func (f *Fleet) runOn(ctx context.Context, i int, req api.Request) (*api.RunResult, error) {
	f.inflight[i].Add(1)
	defer f.inflight[i].Add(-1)
	res, err := f.backends[i].Run(ctx, req)
	if err != nil {
		return nil, err
	}
	res.Worker = f.backends[i].Name()
	return res, nil
}

// isRefusal reports whether err is a worker's enveloped refusal that a
// different worker might accept (full queue or draining).
func isRefusal(err error) bool {
	var ae *api.Error
	if !errors.As(err, &ae) {
		return false
	}
	return ae.Code == api.CodeQueueFull || ae.Code == api.CodeDraining
}

// route serves one resolved request: pick the home worker, steal on
// refusal, fail over on transport errors.
func (f *Fleet) route(ctx context.Context, req api.Request, res resolved, pin string) (*api.RunResult, error) {
	if f.draining.Load() {
		return nil, ErrDraining
	}
	f.cTotal.Add(1)

	if pin != "" {
		i, ok := f.backendByName(pin)
		if !ok {
			return nil, fmt.Errorf("serve: %w: unknown worker %q in %s header",
				errUnknownWorker, pin, api.HeaderRoute)
		}
		f.cPinned.Add(1)
		return f.runOn(ctx, i, req)
	}

	warm := res.snapKey != ""
	sticky := res.key
	if warm {
		sticky = res.snapKey
		f.cSticky.Add(1)
	}
	order := f.rendezvous(sticky)

	// Home worker: the top-ranked healthy candidate (or the top-ranked
	// one outright when everything looks down — the inline health bits
	// can be stale, so trying beats refusing).
	home := order[0]
	for _, i := range order {
		if f.healthy[i].Load() {
			home = i
			break
		}
	}

	result, err := f.runOn(ctx, home, req)
	if err == nil {
		return result, nil
	}
	if ctx.Err() != nil {
		// The caller went away; nothing below can help.
		return nil, err
	}
	transport := false
	if !isRefusal(err) {
		var ae *api.Error
		if errors.As(err, &ae) {
			// A request-level error (bad request, run failure): every
			// worker answers identically, relay it.
			return nil, err
		}
		// Transport failure: the worker is gone until the health loop
		// or supervisor revives it.
		f.healthy[home].Store(false)
		transport = true
	}

	if warm && !transport {
		// The snapshot owner is refusing with a full queue. Stealing
		// would rebuild the prefix elsewhere and defeat the LRU;
		// propagate the 429 and let the client retry into the owner.
		f.cRejected.Add(1)
		return nil, err
	}

	// Steal: remaining candidates, healthiest and least-loaded first.
	rest := make([]int, 0, len(order)-1)
	for _, i := range order {
		if i != home && f.healthy[i].Load() {
			rest = append(rest, i)
		}
	}
	sort.SliceStable(rest, func(a, b int) bool {
		return f.inflight[rest[a]].Load() < f.inflight[rest[b]].Load()
	})
	lastErr := err
	for _, i := range rest {
		result, err := f.runOn(ctx, i, req)
		if err == nil {
			f.cStolen.Add(1)
			return result, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		if !isRefusal(err) {
			var ae *api.Error
			if errors.As(err, &ae) {
				return nil, err
			}
			f.healthy[i].Store(false)
		}
		lastErr = err
	}
	f.cRejected.Add(1)
	var ae *api.Error
	if !errors.As(lastErr, &ae) {
		return nil, &api.Error{
			Version: api.Version,
			Message: fmt.Sprintf("serve: no worker reachable: %v", lastErr),
			Code:    api.CodeUnavailable,
		}
	}
	return nil, lastErr
}

// errUnknownWorker rejects a HeaderRoute pin naming no fleet worker;
// fleetError maps it to CodeBadRequest.
var errUnknownWorker = errors.New("serve: unknown worker")

// Handler returns the coordinator mux: the same /v1 contract a single
// Server serves, plus the deprecated unversioned aliases.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathRun, f.handleRun)
	mux.HandleFunc(api.PathStream, f.handleStream)
	mux.HandleFunc(api.PathHealthz, f.handleHealthz)
	mux.HandleFunc(api.PathStatsz, f.handleStatsz)
	mux.HandleFunc(api.PathWorkloads, f.handleWorkloads)
	mux.HandleFunc(api.LegacyPathRun, deprecatedAlias(api.PathRun, f.handleRun))
	mux.HandleFunc(api.LegacyPathHealthz, deprecatedAlias(api.PathHealthz, f.handleHealthz))
	mux.HandleFunc(api.LegacyPathStatsz, deprecatedAlias(api.PathStatsz, f.handleStatsz))
	mux.HandleFunc(api.LegacyPathWorkloads, deprecatedAlias(api.PathWorkloads, f.handleWorkloads))
	return mux
}

// handleRun is POST /v1/run on the coordinator.
func (f *Fleet) handleRun(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(w, r)
	if err != nil {
		writeAPIError(w, toAPIError(err))
		return
	}
	// Resolve at the edge: bad requests bounce here without burning a
	// worker round trip, and the resolution yields the exact sticky
	// keys the workers themselves would compute.
	res, err := f.resolver.resolve(req)
	if err != nil {
		writeAPIError(w, toAPIError(err))
		return
	}
	result, err := f.route(r.Context(), req, res, r.Header.Get(api.HeaderRoute))
	if err != nil {
		writeAPIError(w, fleetError(err))
		return
	}
	writeRunResult(w, result)
}

// handleStream is POST /v1/stream on the coordinator: the stream runs
// at the edge while the one-shot run is routed to a worker, so workers
// stay streaming-agnostic.
func (f *Fleet) handleStream(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(w, r)
	if err != nil {
		writeAPIError(w, toAPIError(err))
		return
	}
	res, err := f.resolver.resolve(req)
	if err != nil {
		writeAPIError(w, toAPIError(err))
		return
	}
	pin := r.Header.Get(api.HeaderRoute)
	queued := api.StreamQueued{Version: api.Version, Workload: res.meta.name, Key: res.key}
	serveStream(w, r, f.cfg.StreamHeartbeat, queued, func(ctx context.Context) (*api.RunResult, error) {
		result, err := f.route(ctx, req, res, pin)
		if err != nil {
			return nil, fleetError(err)
		}
		return result, nil
	})
}

// fleetError maps coordinator-side failures (unknown worker pin,
// draining) through the envelope; worker envelopes pass through.
func fleetError(err error) *api.Error {
	if errors.Is(err, errUnknownWorker) {
		return &api.Error{Version: api.Version, Message: err.Error(), Code: api.CodeBadRequest}
	}
	return toAPIError(err)
}

// handleHealthz is GET /v1/healthz: 200 while at least one worker is
// believed healthy and the coordinator is not draining.
func (f *Fleet) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if f.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	up := 0
	for i := range f.healthy {
		if f.healthy[i].Load() {
			up++
		}
	}
	if up == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"no workers"}`)
		return
	}
	fmt.Fprintf(w, "{\"status\":\"ok\",\"workers\":%d}\n", up)
}

// Stats aggregates the fleet view: coordinator routing counters plus
// every worker's own statsz.
func (f *Fleet) Stats(ctx context.Context) api.FleetStatsz {
	var st api.FleetStatsz
	st.Version = api.Version
	st.Fleet = true
	st.Workers = len(f.backends)
	st.Draining = f.draining.Load()
	st.Routing.Total = f.cTotal.Load()
	st.Routing.Sticky = f.cSticky.Load()
	st.Routing.Pinned = f.cPinned.Load()
	st.Routing.Stolen = f.cStolen.Load()
	st.Routing.Rejected = f.cRejected.Load()
	perOpt := make(map[string]opt.KindStats)
	for i, b := range f.backends {
		row := api.WorkerStatsz{
			Name:     b.Name(),
			Healthy:  f.healthy[i].Load(),
			Inflight: int(f.inflight[i].Load()),
		}
		sctx, cancel := context.WithTimeout(ctx, f.cfg.StatszTimeout)
		ws, err := b.Statsz(sctx)
		cancel()
		if err != nil {
			row.Error = err.Error()
		} else {
			row.Statsz = &ws
			for _, k := range ws.Optimizations {
				sum := perOpt[k.Kind]
				sum.Kind = k.Kind
				sum.Decisions += k.Decisions
				sum.Reverts += k.Reverts
				perOpt[k.Kind] = sum
			}
		}
		st.PerWorker = append(st.PerWorker, row)
	}
	for _, sum := range perOpt {
		st.Optimizations = append(st.Optimizations, sum)
	}
	sort.Slice(st.Optimizations, func(i, j int) bool { return st.Optimizations[i].Kind < st.Optimizations[j].Kind })
	return st
}

// handleStatsz is GET /v1/statsz on the coordinator.
func (f *Fleet) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(f.Stats(r.Context()))
}

// handleWorkloads is GET /v1/workloads: answered from the
// coordinator's own resolver — the registry is compiled into the
// binary, so coordinator and workers agree by construction.
func (f *Fleet) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	rows := f.resolver.workloads()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rows)
}
