package serve

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
)

// stripKey unmarshals a response body and removes the request key —
// the only field that legitimately differs between a cold run and its
// warm-started equivalent (the key encodes warm_start_cycles).
func stripKey(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, body)
	}
	delete(m, "key")
	return m
}

// TestServeWarmStart drives the snapshot-prefix cache end to end:
// store on first warm request, hit on a second request sharing the
// prefix (divergent max_cycles), simulated numbers identical to the
// cold run throughout, and counters surfaced in /statsz.
func TestServeWarmStart(t *testing.T) {
	s := New(Config{Jobs: 2})
	h := s.Handler()

	const base = `"workload":"serve_tiny","seed":5,"monitoring":true,"interval":1000`
	cold := doReq(h, nil, http.MethodPost, "/run", `{`+base+`}`)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold run: %d %s", cold.Code, cold.Body.String())
	}

	warmBody := `{` + base + `,"warm_start_cycles":100000}`
	w1 := doReq(h, nil, http.MethodPost, "/run", warmBody)
	if w1.Code != http.StatusOK {
		t.Fatalf("warm run: %d %s", w1.Code, w1.Body.String())
	}
	if got := w1.Header().Get("X-Hpmvmd-Snapshot"); got != "store" {
		t.Errorf("first warm request snapshot disposition = %q, want store", got)
	}
	if got := w1.Header().Get("X-Hpmvmd-Cache"); got != "miss" {
		t.Errorf("first warm request cache disposition = %q, want miss", got)
	}
	// An exact warm start is byte-identical to the cold run modulo the
	// request key.
	if c, w := stripKey(t, cold.Body.Bytes()), stripKey(t, w1.Body.Bytes()); !reflect.DeepEqual(c, w) {
		t.Errorf("warm response differs from cold:\ncold %v\nwarm %v", c, w)
	}

	// Divergent request: same prefix, different cycle budget — a result
	// cache miss that must reuse the stored snapshot.
	w2 := doReq(h, nil, http.MethodPost, "/run", `{`+base+`,"warm_start_cycles":100000,"max_cycles":400000000}`)
	if w2.Code != http.StatusOK {
		t.Fatalf("divergent warm run: %d %s", w2.Code, w2.Body.String())
	}
	if got := w2.Header().Get("X-Hpmvmd-Cache"); got != "miss" {
		t.Errorf("divergent request cache disposition = %q, want miss", got)
	}
	if got := w2.Header().Get("X-Hpmvmd-Snapshot"); got != "hit" {
		t.Errorf("divergent request snapshot disposition = %q, want hit", got)
	}
	if a, b := stripKey(t, w1.Body.Bytes()), stripKey(t, w2.Body.Bytes()); !reflect.DeepEqual(a, b) {
		t.Errorf("snapshot hit response differs from store response")
	}

	// Repeating the first warm request replays the result cache and
	// never touches the snapshot layer.
	w3 := doReq(h, nil, http.MethodPost, "/run", warmBody)
	if got := w3.Header().Get("X-Hpmvmd-Cache"); got != "hit" {
		t.Errorf("repeat cache disposition = %q, want hit", got)
	}
	if got := w3.Header().Get("X-Hpmvmd-Snapshot"); got != "" {
		t.Errorf("result-cache hit carries snapshot header %q", got)
	}
	if !reflect.DeepEqual(w1.Body.Bytes(), w3.Body.Bytes()) {
		t.Error("replayed warm response not byte-identical")
	}

	st := s.Stats()
	if st.Snapshots.Stores != 1 || st.Snapshots.Hits != 1 || st.Snapshots.Entries != 1 {
		t.Errorf("snapshot stats = %+v, want 1 store / 1 hit / 1 entry", st.Snapshots)
	}
}

// TestServeWarmStartValidation pins the 400 on a warm-start point at
// or beyond the cycle budget.
func TestServeWarmStartValidation(t *testing.T) {
	s := New(Config{Jobs: 1})
	h := s.Handler()
	rr := doReq(h, nil, http.MethodPost, "/run",
		`{"workload":"serve_tiny","warm_start_cycles":100,"max_cycles":100}`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("warm_start_cycles >= max_cycles: %d, want 400", rr.Code)
	}
}
