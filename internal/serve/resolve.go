package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"hpmvm/internal/api"
	"hpmvm/internal/bench"
	"hpmvm/internal/core"
	"hpmvm/internal/hw/cache"
)

// This file is the request resolver: canonicalization of an
// api.Request into a validated bench.RunConfig + core.Options and the
// content addresses (result-cache key, snapshot key) derived from
// them. It is shared by the single-process Server and the fleet
// coordinator — the coordinator resolves requests itself so it can
// reject bad ones at the edge and sticky-route warm starts by the
// exact snapshot key its workers will compute.

// workloadMeta is the per-workload data needed to canonicalize a
// request without executing it, captured once at construction from a
// single builder invocation.
type workloadMeta struct {
	name        string
	description string
	minHeap     uint64
	hotField    string
	builder     bench.Builder
}

// Resolver canonicalizes requests over the frozen workload registry.
type Resolver struct {
	meta map[string]workloadMeta // immutable after newResolver
}

// newResolver captures the registry: it invokes every registered
// builder once to learn the calibrated minimum heap and hot field each
// workload canonicalizes with.
func newResolver() *Resolver {
	r := &Resolver{meta: make(map[string]workloadMeta)}
	for _, name := range bench.Names() {
		b, _ := bench.Get(name)
		prog := b()
		r.meta[name] = workloadMeta{
			name:        name,
			description: prog.Description,
			minHeap:     prog.MinHeap,
			hotField:    prog.HotFieldName,
			builder:     b,
		}
	}
	return r
}

// workloads returns the registry rows for /v1/workloads.
func (r *Resolver) workloads() []api.WorkloadInfo {
	rows := make([]api.WorkloadInfo, 0, len(r.meta))
	for _, m := range r.meta {
		rows = append(rows, api.WorkloadInfo{Name: m.name, Description: m.description, MinHeap: m.minHeap, HotField: m.hotField})
	}
	return rows
}

// resolved is a request after canonicalization.
type resolved struct {
	meta workloadMeta
	cfg  bench.RunConfig
	opts core.Options
	key  string

	// warmCycles and snapKey are set iff the request asked for a
	// warm start; snapKey addresses the shared prefix snapshot.
	warmCycles uint64
	snapKey    string
}

// resolve canonicalizes a request: version and workload lookup, enum
// parsing, RunConfig construction, options resolution and validation,
// and the content-address the cache is keyed by.
func (r *Resolver) resolve(req api.Request) (resolved, error) {
	var res resolved
	if req.Version != "" && req.Version != api.Version {
		return res, fmt.Errorf("serve: %w: unsupported api version %q (this server speaks %q)",
			core.ErrBadOptions, req.Version, api.Version)
	}
	meta, ok := r.meta[req.Workload]
	if !ok {
		return res, fmt.Errorf("serve: %w %q", bench.ErrUnknownWorkload, req.Workload)
	}
	res.meta = meta

	cfg := bench.RunConfig{
		Heap:        req.HeapBytes,
		HeapFactor:  req.HeapFactor,
		Monitoring:  req.Monitoring,
		Interval:    req.Interval,
		Coalloc:     req.Coalloc,
		CodeLayout:  req.CodeLayout,
		SwPrefetch:  req.SwPrefetch,
		Adaptive:    req.Adaptive,
		Seed:        req.Seed,
		MaxCycles:   req.MaxCycles,
		TrackFields: req.TrackFields,
		Observe:     req.Observe,
	}
	if req.Sampled {
		if req.WarmStartCycles > 0 {
			// Reject up front rather than surfacing core's late Snapshot
			// refusal as a 500: sampled systems cannot checkpoint, so a
			// sampled warm start is a contradiction in the request.
			return res, fmt.Errorf("serve: %w: sampled=true cannot be combined with warm_start_cycles (sampled systems refuse Snapshot)", core.ErrBadOptions)
		}
		scfg := bench.CalibratedSampling(meta.name)
		cfg.Sampling = &scfg
	}
	switch strings.ToLower(req.Collector) {
	case "", "genms":
		cfg.Collector = core.GenMS
	case "gencopy":
		cfg.Collector = core.GenCopy
	default:
		return res, fmt.Errorf("serve: %w: unknown collector %q (genms or gencopy)", core.ErrBadOptions, req.Collector)
	}
	switch strings.ToLower(req.Event) {
	case "", "l1", "l1_miss":
		cfg.Event = cache.EventL1Miss
	case "l2", "l2_miss":
		cfg.Event = cache.EventL2Miss
	case "dtlb", "dtlb_miss":
		cfg.Event = cache.EventDTLBMiss
	case "l1i", "l1i_miss":
		cfg.Event = cache.EventL1IMiss
	default:
		return res, fmt.Errorf("serve: %w: unknown event %q (l1, l2, dtlb or l1i)", core.ErrBadOptions, req.Event)
	}

	opts := cfg.Resolve(meta.minHeap, meta.hotField)
	if err := opts.Validate(); err != nil {
		return res, err
	}
	// Invariant, not a reachable request path today: sampling may only
	// enter the options through the sampled=true branch above. A future
	// field that smuggled Options.Sampling in any other way would run
	// two-lane and cache hybrid non-exact metrics as if they were exact
	// — fail loudly instead.
	if opts.Sampling != nil && !req.Sampled {
		return res, fmt.Errorf("serve: %w: sampling configured outside the sampled=true path", core.ErrBadOptions)
	}
	if req.WarmStartCycles > 0 {
		if cfg.MaxCycles != 0 && req.WarmStartCycles >= cfg.MaxCycles {
			return res, fmt.Errorf("serve: %w: warm_start_cycles (%d) must be below max_cycles (%d)",
				core.ErrBadOptions, req.WarmStartCycles, cfg.MaxCycles)
		}
		res.warmCycles = req.WarmStartCycles
		res.snapKey = snapshotKey(meta.name, req.WarmStartCycles, cfg.Observe, opts)
	}
	res.cfg = cfg
	res.opts = opts
	res.key = requestKey(meta.name, cfg.MaxCycles, req.WarmStartCycles, cfg.Observe, opts)
	return res, nil
}

// requestKey is the content address of one run request: the workload,
// the request-level knobs that shape the response but live outside
// core.Options (cycle budget, observe), and the canonical option
// serialization. Everything that can change a single response byte is
// in here. warm_start_cycles cannot change a byte (an exact restore is
// byte-identical to the cold run) but is keyed anyway, so warm
// requests always exercise — and therefore always report — the
// snapshot path instead of aliasing a cold run's cached result.
func requestKey(workload string, maxCycles, warmCycles uint64, observe bool, opts core.Options) string {
	payload := fmt.Sprintf("workload=%s;max_cycles=%d;warm_start_cycles=%d;observe=%t;%s",
		workload, maxCycles, warmCycles, observe, opts.CanonicalString())
	sum := sha256.Sum256([]byte(payload))
	return hex.EncodeToString(sum[:])
}

// snapshotKey is the content address of a warm-start prefix snapshot:
// the workload, the pause cycle, the observer switch (it changes the
// snapshot's component set) and the exact canonical options. Requests
// that differ only in max_cycles share the snapshot — that is the
// serve-level reuse axis; sampling-interval divergence is served at
// the bench layer (Engine.RunFrom), not through this cache, so every
// stored prefix replays byte-identically. The fleet coordinator
// sticky-routes on this same key, so all requests sharing a prefix
// land on the worker whose LRU holds the snapshot.
func snapshotKey(workload string, warmCycles uint64, observe bool, opts core.Options) string {
	payload := fmt.Sprintf("snapshot;workload=%s;warm_start_cycles=%d;observe=%t;%s",
		workload, warmCycles, observe, opts.CanonicalString())
	sum := sha256.Sum256([]byte(payload))
	return hex.EncodeToString(sum[:])
}
