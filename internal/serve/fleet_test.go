package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hpmvm/internal/api"
	"hpmvm/internal/bench"
)

// newTestFleet builds an in-process fleet of n workers plus the fleet
// handler. Background health probing is disabled so tests control the
// healthy bits deterministically.
func newTestFleet(t *testing.T, n int, cfg Config) (*Fleet, []*Server, http.Handler) {
	t.Helper()
	backends := make([]Backend, n)
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		servers[i] = New(cfg)
		backends[i] = NewLocalBackend(fmt.Sprintf("w%d", i), servers[i])
	}
	f, err := NewFleet(FleetConfig{Backends: backends, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, servers, f.Handler()
}

// newPinnedReq builds a run request carrying the HeaderRoute pin.
func newPinnedReq(path, body, worker string) *http.Request {
	req, _ := http.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
	req.Header.Set(api.HeaderRoute, worker)
	return req
}

// doRaw drives a prepared request through the handler.
func doRaw(h http.Handler, req *http.Request) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// TestFleetByteIdentical is the fleet keystone: a 4-worker fleet
// serves the exact bytes a single-process server serves — for exact,
// monitored, sampled and warm-started requests — both on the routed
// path and when pinned to every individual worker.
func TestFleetByteIdentical(t *testing.T) {
	single := New(Config{Jobs: 1})
	sh := single.Handler()
	_, _, fh := newTestFleet(t, 4, Config{Jobs: 1})

	bodies := []string{
		`{"workload":"serve_tiny","seed":1}`,
		`{"workload":"serve_tiny","seed":2,"monitoring":true,"interval":1000}`,
		`{"workload":"serve_tiny","seed":3,"sampled":true}`,
		`{"workload":"serve_tiny","seed":4,"monitoring":true,"interval":1000,"warm_start_cycles":100000}`,
	}
	for _, body := range bodies {
		want := doReq(sh, nil, http.MethodPost, api.PathRun, body)
		if want.Code != http.StatusOK {
			t.Fatalf("single server: %d %s", want.Code, want.Body.String())
		}
		got := doReq(fh, nil, http.MethodPost, api.PathRun, body)
		if got.Code != http.StatusOK {
			t.Fatalf("fleet: %d %s", got.Code, got.Body.String())
		}
		if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
			t.Errorf("fleet body differs from single server for %s", body)
		}
		if got.Header().Get(api.HeaderWorker) == "" {
			t.Errorf("fleet response lacks %s header", api.HeaderWorker)
		}

		// Pin the same request to every worker: all must answer the
		// identical bytes (each simulates its own cold run).
		for w := 0; w < 4; w++ {
			name := fmt.Sprintf("w%d", w)
			rr := doRaw(fh, newPinnedReq(api.PathRun, body, name))
			if rr.Code != http.StatusOK {
				t.Fatalf("pinned %s: %d %s", name, rr.Code, rr.Body.String())
			}
			if got := rr.Header().Get(api.HeaderWorker); got != name {
				t.Errorf("pinned to %s but served by %q", name, got)
			}
			if !bytes.Equal(rr.Body.Bytes(), want.Body.Bytes()) {
				t.Errorf("worker %s answers different bytes for %s", name, body)
			}
		}
	}
}

// TestFleetStickyWarmRouting pins the snapshot-affinity contract:
// warm-start requests sharing a prefix land on one worker, whose LRU
// serves the second request as a snapshot hit; every other worker's
// snapshot cache stays cold.
func TestFleetStickyWarmRouting(t *testing.T) {
	f, servers, fh := newTestFleet(t, 4, Config{Jobs: 1})

	const base = `"workload":"serve_tiny","seed":6,"monitoring":true,"interval":1000`
	w1 := doReq(fh, nil, http.MethodPost, api.PathRun, `{`+base+`,"warm_start_cycles":100000}`)
	if w1.Code != http.StatusOK {
		t.Fatalf("warm store: %d %s", w1.Code, w1.Body.String())
	}
	if got := w1.Header().Get(api.HeaderSnapshot); got != "store" {
		t.Fatalf("first warm request snapshot disposition %q, want store", got)
	}
	owner := w1.Header().Get(api.HeaderWorker)

	// Divergent cycle budget: shares the prefix, so it must be sticky-
	// routed to the owner and hit its snapshot LRU.
	w2 := doReq(fh, nil, http.MethodPost, api.PathRun, `{`+base+`,"warm_start_cycles":100000,"max_cycles":3000000}`)
	if w2.Code != http.StatusOK {
		t.Fatalf("warm divergent: %d %s", w2.Code, w2.Body.String())
	}
	if got := w2.Header().Get(api.HeaderWorker); got != owner {
		t.Errorf("divergent warm request routed to %q, owner is %q (sticky routing broken)", got, owner)
	}
	if got := w2.Header().Get(api.HeaderSnapshot); got != "hit" {
		t.Errorf("divergent warm request snapshot disposition %q, want hit", got)
	}

	stores, hits := 0, 0
	for i, srv := range servers {
		st := srv.Stats()
		stores += int(st.Snapshots.Stores)
		hits += int(st.Snapshots.Hits)
		if name := fmt.Sprintf("w%d", i); name == owner {
			if st.Snapshots.Stores != 1 || st.Snapshots.Hits != 1 {
				t.Errorf("owner %s snapshots = %+v, want 1 store / 1 hit", name, st.Snapshots)
			}
		} else if st.Snapshots.Stores != 0 || st.Snapshots.Entries != 0 {
			t.Errorf("non-owner %s holds snapshots: %+v", name, st.Snapshots)
		}
	}
	if stores != 1 || hits != 1 {
		t.Errorf("fleet-wide snapshots = %d stores / %d hits, want exactly 1 / 1", stores, hits)
	}
	if st := f.Stats(context.Background()); st.Routing.Sticky != 2 {
		t.Errorf("sticky routing counter = %d, want 2", st.Routing.Sticky)
	}
}

// saturate gates srv's runner and fills all Jobs+QueueDepth admission
// slots with pinned runs of distinct keys (so single-flight cannot
// collapse them). Returns the release channel and the in-flight
// waitgroup.
func saturate(t *testing.T, fh http.Handler, f *Fleet, srv *Server, home, seedBase int) (chan struct{}, *sync.WaitGroup) {
	t.Helper()
	release := make(chan struct{})
	running := make(chan struct{}, 8)
	origRunner := srv.runner
	srv.runner = func(ctx context.Context, b bench.Builder, cfg bench.RunConfig, label string) (*bench.Result, error) {
		running <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return origRunner(ctx, b, cfg, label)
	}
	capacity := srv.cfg.Jobs + srv.cfg.QueueDepth
	var wg sync.WaitGroup
	for i := 0; i < capacity; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			doRaw(fh, newPinnedReq(api.PathRun,
				fmt.Sprintf(`{"workload":"serve_tiny","seed":%d}`, seedBase+i),
				f.backends[home].Name()))
		}()
	}
	for i := 0; i < capacity; i++ {
		<-running
	}
	return release, &wg
}

// TestFleetStealOnQueueFull fills the home worker for a key and
// verifies the identical request is stolen to the other worker,
// answers 200, and still matches a single-server run byte for byte.
func TestFleetStealOnQueueFull(t *testing.T) {
	f, servers, fh := newTestFleet(t, 2, Config{Jobs: 1, QueueDepth: 1})

	// Find the home worker for this request key.
	const body = `{"workload":"serve_tiny","seed":42}`
	var req api.Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	res, err := f.resolver.resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	home := f.rendezvous(res.key)[0]
	release, wg := saturate(t, fh, f, servers[home], home, 1000)

	// The home worker is full: the routed request must be stolen to the
	// other worker and succeed.
	rr := doReq(fh, nil, http.MethodPost, api.PathRun, body)
	if rr.Code != http.StatusOK {
		t.Fatalf("stolen request: %d %s", rr.Code, rr.Body.String())
	}
	if thief := rr.Header().Get(api.HeaderWorker); thief == f.backends[home].Name() {
		t.Errorf("request served by the saturated home worker %s", thief)
	}
	if got := f.cStolen.Load(); got != 1 {
		t.Errorf("stolen counter = %d, want 1", got)
	}

	close(release)
	wg.Wait()

	// The stolen response must match a single-server cold run bit for
	// bit.
	want := doReq(New(Config{Jobs: 1}).Handler(), nil, http.MethodPost, api.PathRun, body)
	if !bytes.Equal(rr.Body.Bytes(), want.Body.Bytes()) {
		t.Error("stolen response differs from a single-server run")
	}
}

// TestFleetWarmRefusalPropagates: a warm request whose snapshot owner
// is full is NOT stolen — the owner's queue_full envelope (with its
// retry hint) propagates so the client retries into the owner's LRU.
func TestFleetWarmRefusalPropagates(t *testing.T) {
	f, servers, fh := newTestFleet(t, 2, Config{Jobs: 1, QueueDepth: 1})

	const body = `{"workload":"serve_tiny","seed":7,"monitoring":true,"interval":1000,"warm_start_cycles":100000}`
	var req api.Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	res, err := f.resolver.resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.snapKey == "" {
		t.Fatal("warm request resolved without a snapshot key")
	}
	home := f.rendezvous(res.snapKey)[0]
	release, wg := saturate(t, fh, f, servers[home], home, 2000)

	rr := doReq(fh, nil, http.MethodPost, api.PathRun, body)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("warm request to full owner: %d, want 429: %s", rr.Code, rr.Body.String())
	}
	var eb api.Error
	if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil || eb.Code != api.CodeQueueFull {
		t.Errorf("warm refusal envelope = %q (err %v)", rr.Body.String(), err)
	}
	if eb.RetryAfter <= 0 {
		t.Errorf("warm refusal lacks retry_after: %+v", eb)
	}
	if got := f.cStolen.Load(); got != 0 {
		t.Errorf("warm request was stolen %d times, want 0", got)
	}

	close(release)
	wg.Wait()
}

// TestFleetTransportFailover: a dead worker (every call fails with a
// non-envelope transport error) is marked unhealthy inline and traffic
// fails over; statsz reports the outage.
func TestFleetTransportFailover(t *testing.T) {
	good := New(Config{Jobs: 1})
	backends := []Backend{
		&deadBackend{name: "w0"},
		NewLocalBackend("w1", good),
	}
	f, err := NewFleet(FleetConfig{Backends: backends, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fh := f.Handler()

	// Enough distinct keys that at least one homes on the dead worker
	// (rendezvous hashing is deterministic, so this is stable).
	for seed := 1; seed <= 8; seed++ {
		rr := doReq(fh, nil, http.MethodPost, api.PathRun, fmt.Sprintf(`{"workload":"serve_tiny","seed":%d}`, seed))
		if rr.Code != http.StatusOK {
			t.Fatalf("seed %d: %d %s", seed, rr.Code, rr.Body.String())
		}
		if rr.Header().Get(api.HeaderWorker) != "w1" {
			t.Errorf("seed %d served by %q, only w1 is alive", seed, rr.Header().Get(api.HeaderWorker))
		}
	}
	if f.healthy[0].Load() {
		t.Error("dead worker still marked healthy after transport failures")
	}
	st := f.Stats(context.Background())
	if st.PerWorker[0].Healthy || st.PerWorker[0].Error == "" {
		t.Errorf("statsz row for dead worker = %+v, want unhealthy with error", st.PerWorker[0])
	}
	if st.PerWorker[1].Statsz == nil || st.PerWorker[1].Statsz.Cache.Misses == 0 {
		t.Errorf("statsz row for live worker missing its cache stats: %+v", st.PerWorker[1])
	}
	if st.Routing.Stolen == 0 {
		t.Errorf("failover should count as steals, routing = %+v", st.Routing)
	}
}

// deadBackend fails every call with a transport-style error.
type deadBackend struct{ name string }

func (d *deadBackend) Name() string { return d.name }
func (d *deadBackend) Run(context.Context, api.Request) (*api.RunResult, error) {
	return nil, errors.New("dial tcp: connection refused")
}
func (d *deadBackend) Statsz(context.Context) (api.Statsz, error) {
	return api.Statsz{}, errors.New("dial tcp: connection refused")
}
func (d *deadBackend) Healthz(context.Context) error {
	return errors.New("dial tcp: connection refused")
}
func (d *deadBackend) Workloads(context.Context) ([]api.WorkloadInfo, error) {
	return nil, errors.New("dial tcp: connection refused")
}

// TestFleetPinUnknownWorker: an unknown HeaderRoute pin is a client
// error, not a routing fallback.
func TestFleetPinUnknownWorker(t *testing.T) {
	_, _, fh := newTestFleet(t, 2, Config{Jobs: 1})
	rr := doRaw(fh, newPinnedReq(api.PathRun, `{"workload":"serve_tiny","seed":1}`, "w9"))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("unknown pin: %d, want 400: %s", rr.Code, rr.Body.String())
	}
	var eb api.Error
	if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil || eb.Code != api.CodeBadRequest {
		t.Errorf("unknown pin envelope = %q (err %v)", rr.Body.String(), err)
	}
}

// TestFleetDrain: a draining coordinator bounces runs with the
// draining code, flips healthz, and drains its in-process workers.
func TestFleetDrain(t *testing.T) {
	f, servers, fh := newTestFleet(t, 2, Config{Jobs: 1})
	f.Drain()
	rr := doReq(fh, nil, http.MethodPost, api.PathRun, `{"workload":"serve_tiny","seed":1}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining fleet run: %d, want 503: %s", rr.Code, rr.Body.String())
	}
	var eb api.Error
	if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil || eb.Code != api.CodeDraining {
		t.Errorf("draining envelope = %q", rr.Body.String())
	}
	if rr := doReq(fh, nil, http.MethodGet, api.PathHealthz, ""); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: %d, want 503", rr.Code)
	}
	for i, srv := range servers {
		if st := srv.Stats(); !st.Draining {
			t.Errorf("in-process worker %d not drained by fleet Drain", i)
		}
	}
}

// TestFleetStatszShape: the coordinator statsz endpoint carries the
// fleet marker, version, per-worker rows and routing counters.
func TestFleetStatszShape(t *testing.T) {
	_, _, fh := newTestFleet(t, 3, Config{Jobs: 1})
	if rr := doReq(fh, nil, http.MethodPost, api.PathRun, `{"workload":"serve_tiny","seed":1}`); rr.Code != http.StatusOK {
		t.Fatalf("prime run: %d", rr.Code)
	}
	rr := doReq(fh, nil, http.MethodGet, api.PathStatsz, "")
	var st api.FleetStatsz
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("statsz decode: %v: %s", err, rr.Body.String())
	}
	if !st.Fleet || st.Version != api.Version || st.Workers != 3 {
		t.Errorf("fleet statsz header = fleet=%t version=%q workers=%d", st.Fleet, st.Version, st.Workers)
	}
	if len(st.PerWorker) != 3 {
		t.Fatalf("per-worker rows = %d, want 3", len(st.PerWorker))
	}
	if st.Routing.Total != 1 {
		t.Errorf("routing total = %d, want 1", st.Routing.Total)
	}
	for _, row := range st.PerWorker {
		if row.Statsz == nil || !row.Healthy {
			t.Errorf("worker row %s missing statsz or unhealthy: %+v", row.Name, row)
		}
	}
}
