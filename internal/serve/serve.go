// Package serve is the hpmvmd run service: a long-lived HTTP/JSON
// front end over the simulation stack. It accepts run requests
// (workload, heap, collector, monitoring, co-allocation, seed),
// schedules them on the internal/bench worker-pool engine, and returns
// the full result — timing, cache statistics, GC statistics,
// co-allocation pairs, and optionally the obs metrics snapshot.
//
// Because a run is fully deterministic in (workload, resolved
// core.Options, seed), the service fronts the engine with a
// content-addressed result cache: requests are canonicalized
// (bench.RunConfig.Resolve + core's canonical serialization), hashed,
// and identical requests replay the stored response bytes. Single-
// flight deduplication makes N concurrent identical requests cost one
// simulation. Production plumbing: per-request timeouts, cooperative
// cancellation threaded down to the VM's safepoints, a bounded queue
// with 429 backpressure, graceful drain, and /healthz + /statsz fed by
// internal/obs counters.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"hpmvm/internal/bench"
	"hpmvm/internal/core"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/monitor"
	"hpmvm/internal/obs"
	"hpmvm/internal/stats"
)

// ErrQueueFull is the sentinel returned (and mapped to HTTP 429) when
// the run queue is at capacity.
var ErrQueueFull = errors.New("serve: queue full")

// ErrDraining is returned (HTTP 503) once the server began its
// graceful drain and no longer accepts new runs.
var ErrDraining = errors.New("serve: draining")

// maxRequestBody bounds a /run request body.
const maxRequestBody = 1 << 20

// Config tunes a Server.
type Config struct {
	// Jobs is the worker-pool width (0 selects bench.DefaultJobs).
	Jobs int
	// QueueDepth bounds how many runs may be outstanding beyond the
	// worker width before new requests are rejected with ErrQueueFull
	// (0 selects 64).
	QueueDepth int
	// CacheEntries bounds the result cache (0 selects 256).
	CacheEntries int
	// SnapshotEntries bounds the warm-start snapshot-prefix cache.
	// Snapshots are whole-machine images (megabytes each), so the
	// default is small (0 selects 8).
	SnapshotEntries int
	// Timeout caps one run's wall clock; the run is cancelled at its
	// next safepoint when exceeded (0 = no cap).
	Timeout time.Duration
}

// workloadMeta is the per-workload data needed to canonicalize a
// request without executing it, captured once at construction from a
// single builder invocation.
type workloadMeta struct {
	name        string
	description string
	minHeap     uint64
	hotField    string
	builder     bench.Builder
}

// wlStat is the per-workload latency accounting surfaced by /statsz.
type wlStat struct {
	runs   uint64
	errors uint64
	total  time.Duration
	max    time.Duration
}

// Server is the run service. Create with New, mount Handler on an
// http.Server.
type Server struct {
	cfg    Config
	engine *bench.Engine
	obs    *obs.Observer
	// runner executes one run; tests swap it to count and gate
	// executions.
	runner func(ctx context.Context, b bench.Builder, cfg bench.RunConfig, label string) (*bench.Result, error)

	// Owned obs counters (also visible in /statsz).
	cRequests  *obs.Counter
	cHits      *obs.Counter
	cShared    *obs.Counter
	cMisses    *obs.Counter
	cEvictions *obs.Counter
	cRejected  *obs.Counter
	cExecuted  *obs.Counter
	cFailed    *obs.Counter
	cCancelled *obs.Counter
	cSnapHits  *obs.Counter
	cSnapStore *obs.Counter
	cSnapEvict *obs.Counter

	mu          sync.Mutex
	cache       *resultCache
	snapshots   *resultCache
	inflight    map[string]*call
	outstanding int
	draining    bool
	perWorkload map[string]*wlStat

	meta map[string]workloadMeta // immutable after New
}

// New builds a Server over the frozen workload registry. It invokes
// every registered builder once to capture the calibrated minimum heap
// and hot field each workload canonicalizes with.
func New(cfg Config) *Server {
	if cfg.Jobs <= 0 {
		cfg.Jobs = bench.DefaultJobs()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.SnapshotEntries <= 0 {
		cfg.SnapshotEntries = 8
	}
	s := &Server{
		cfg:         cfg,
		engine:      bench.NewEngine(cfg.Jobs),
		obs:         obs.New(0),
		cache:       newResultCache(cfg.CacheEntries),
		snapshots:   newResultCache(cfg.SnapshotEntries),
		inflight:    make(map[string]*call),
		perWorkload: make(map[string]*wlStat),
		meta:        make(map[string]workloadMeta),
	}
	s.runner = s.engineRunner
	s.cRequests = s.obs.Counter("serve.requests")
	s.cHits = s.obs.Counter("serve.cache.hits")
	s.cShared = s.obs.Counter("serve.cache.shared")
	s.cMisses = s.obs.Counter("serve.cache.misses")
	s.cEvictions = s.obs.Counter("serve.cache.evictions")
	s.cRejected = s.obs.Counter("serve.queue.rejected")
	s.cExecuted = s.obs.Counter("serve.runs.executed")
	s.cFailed = s.obs.Counter("serve.runs.failed")
	s.cCancelled = s.obs.Counter("serve.runs.cancelled")
	s.cSnapHits = s.obs.Counter("serve.snapshot.hits")
	s.cSnapStore = s.obs.Counter("serve.snapshot.stores")
	s.cSnapEvict = s.obs.Counter("serve.snapshot.evictions")
	s.obs.RegisterSampled("serve.queue.outstanding", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return uint64(s.outstanding)
	})

	for _, name := range bench.Names() {
		b, _ := bench.Get(name)
		prog := b()
		s.meta[name] = workloadMeta{
			name:        name,
			description: prog.Description,
			minHeap:     prog.MinHeap,
			hotField:    prog.HotFieldName,
			builder:     b,
		}
	}
	return s
}

// Drain stops admitting new runs; /run answers 503 and /healthz flips
// to draining so load balancers pull the instance. In-flight runs
// finish normally (http.Server.Shutdown waits for their handlers).
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/workloads", s.handleWorkloads)
	return mux
}

// Request is the JSON body of POST /run. Zero values select the same
// defaults the hpmvm CLI uses.
type Request struct {
	// Workload names a registered benchmark program.
	Workload string `json:"workload"`
	// HeapFactor sizes the heap as a multiple of the workload's
	// calibrated minimum (0 = 4x); HeapBytes overrides it exactly.
	HeapFactor float64 `json:"heap_factor,omitempty"`
	HeapBytes  uint64  `json:"heap_bytes,omitempty"`
	// Collector is "genms" (default) or "gencopy".
	Collector string `json:"collector,omitempty"`
	// Monitoring enables HPM sampling; Interval is the hardware
	// sampling interval in events (0 = adaptive auto mode). Event is
	// "l1" (default), "l2" or "dtlb".
	Monitoring bool   `json:"monitoring,omitempty"`
	Interval   uint64 `json:"interval,omitempty"`
	Event      string `json:"event,omitempty"`
	// Coalloc enables HPM-guided co-allocation (implies monitoring).
	Coalloc bool `json:"coalloc,omitempty"`
	// Adaptive runs AOS recording mode instead of the all-opt plan.
	Adaptive bool `json:"adaptive,omitempty"`
	// Seed drives the deterministic PRNG.
	Seed int64 `json:"seed,omitempty"`
	// MaxCycles bounds the run (0 = no bound).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// TrackFields restricts the monitor time series ("Class::field").
	TrackFields []string `json:"track_fields,omitempty"`
	// Observe attaches the obs layer; the response then carries the
	// final counter/phase snapshot.
	Observe bool `json:"observe,omitempty"`
	// WarmStartCycles, when non-zero, serves the run via the
	// snapshot-prefix cache: the first WarmStartCycles simulated cycles
	// execute once per distinct configuration and are checkpointed;
	// later requests sharing the prefix restore the snapshot and
	// simulate only the tail. An exact restore is byte-identical to the
	// cold run, so the response body is unchanged — only latency and
	// the X-Hpmvmd-Snapshot header differ. Must be below max_cycles
	// when a cycle budget is set.
	WarmStartCycles uint64 `json:"warm_start_cycles,omitempty"`
	// Sampled runs the two-lane sampled simulator (on the workload's
	// calibrated region schedule) instead of the cycle-exact one: the
	// response gains an Estimated block — extrapolated full-run metrics
	// with 95% confidence intervals — while Cycles and the cache stats
	// then report the sampled run's own distorted counters. A sampled
	// simulation is a different simulation, so it caches under its own
	// key, never aliasing the exact result. Incompatible with
	// warm_start_cycles: sampled systems refuse Snapshot.
	Sampled bool `json:"sampled,omitempty"`
}

// RunResponse is the JSON body of a successful /run. Identical
// requests produce byte-identical bodies — cold or cached — which the
// serve-smoke target and TestServeConcurrentMixed assert.
type RunResponse struct {
	Workload  string `json:"workload"`
	Key       string `json:"key"`
	HeapBytes uint64 `json:"heap_bytes"`
	Collector string `json:"collector"`
	Seed      int64  `json:"seed"`

	Cycles  uint64  `json:"cycles"`
	Instret uint64  `json:"instret"`
	CPI     float64 `json:"cpi"`

	Results []int64     `json:"results"`
	Cache   cache.Stats `json:"cache_stats"`

	MinorGCs      uint64  `json:"minor_gcs"`
	MajorGCs      uint64  `json:"major_gcs"`
	GCCycles      uint64  `json:"gc_cycles"`
	CoallocPairs  uint64  `json:"coalloc_pairs"`
	Fragmentation float64 `json:"fragmentation"`

	Monitor      *monitor.Stats `json:"monitor,omitempty"`
	SamplesTaken uint64         `json:"samples_taken"`

	// Sampled and Estimated are set iff the request asked for a sampled
	// run: Estimated carries the extrapolated full-run point estimates
	// with their 95% confidence intervals, and the exact-looking fields
	// above (Cycles, CPI, cache_stats) hold the sampled run's own
	// distorted counters — read Estimated instead.
	Sampled   bool            `json:"sampled,omitempty"`
	Estimated *stats.Estimate `json:"estimated,omitempty"`

	Obs *obs.Metrics `json:"obs,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// resolved is a request after canonicalization.
type resolved struct {
	meta workloadMeta
	cfg  bench.RunConfig
	opts core.Options
	key  string

	// warmCycles and snapKey are set iff the request asked for a
	// warm start; snapKey addresses the shared prefix snapshot.
	warmCycles uint64
	snapKey    string
}

// resolve canonicalizes a request: workload lookup, enum parsing,
// RunConfig construction, options resolution and validation, and the
// content-address the cache is keyed by.
func (s *Server) resolve(req Request) (resolved, error) {
	var r resolved
	meta, ok := s.meta[req.Workload]
	if !ok {
		return r, fmt.Errorf("serve: %w %q", bench.ErrUnknownWorkload, req.Workload)
	}
	r.meta = meta

	cfg := bench.RunConfig{
		Heap:        req.HeapBytes,
		HeapFactor:  req.HeapFactor,
		Monitoring:  req.Monitoring,
		Interval:    req.Interval,
		Coalloc:     req.Coalloc,
		Adaptive:    req.Adaptive,
		Seed:        req.Seed,
		MaxCycles:   req.MaxCycles,
		TrackFields: req.TrackFields,
		Observe:     req.Observe,
	}
	if req.Sampled {
		if req.WarmStartCycles > 0 {
			// Reject up front rather than surfacing core's late Snapshot
			// refusal as a 500: sampled systems cannot checkpoint, so a
			// sampled warm start is a contradiction in the request.
			return r, fmt.Errorf("serve: %w: sampled=true cannot be combined with warm_start_cycles (sampled systems refuse Snapshot)", core.ErrBadOptions)
		}
		scfg := bench.CalibratedSampling(meta.name)
		cfg.Sampling = &scfg
	}
	switch strings.ToLower(req.Collector) {
	case "", "genms":
		cfg.Collector = core.GenMS
	case "gencopy":
		cfg.Collector = core.GenCopy
	default:
		return r, fmt.Errorf("serve: %w: unknown collector %q (genms or gencopy)", core.ErrBadOptions, req.Collector)
	}
	switch strings.ToLower(req.Event) {
	case "", "l1", "l1_miss":
		cfg.Event = cache.EventL1Miss
	case "l2", "l2_miss":
		cfg.Event = cache.EventL2Miss
	case "dtlb", "dtlb_miss":
		cfg.Event = cache.EventDTLBMiss
	default:
		return r, fmt.Errorf("serve: %w: unknown event %q (l1, l2 or dtlb)", core.ErrBadOptions, req.Event)
	}

	opts := cfg.Resolve(meta.minHeap, meta.hotField)
	if err := opts.Validate(); err != nil {
		return r, err
	}
	// Invariant, not a reachable request path today: sampling may only
	// enter the options through the sampled=true branch above. A future
	// field that smuggled Options.Sampling in any other way would run
	// two-lane and cache hybrid non-exact metrics as if they were exact
	// — fail loudly instead.
	if opts.Sampling != nil && !req.Sampled {
		return r, fmt.Errorf("serve: %w: sampling configured outside the sampled=true path", core.ErrBadOptions)
	}
	if req.WarmStartCycles > 0 {
		if cfg.MaxCycles != 0 && req.WarmStartCycles >= cfg.MaxCycles {
			return r, fmt.Errorf("serve: %w: warm_start_cycles (%d) must be below max_cycles (%d)",
				core.ErrBadOptions, req.WarmStartCycles, cfg.MaxCycles)
		}
		r.warmCycles = req.WarmStartCycles
		r.snapKey = snapshotKey(meta.name, req.WarmStartCycles, cfg.Observe, opts)
	}
	r.cfg = cfg
	r.opts = opts
	r.key = requestKey(meta.name, cfg.MaxCycles, req.WarmStartCycles, cfg.Observe, opts)
	return r, nil
}

// requestKey is the content address of one run request: the workload,
// the request-level knobs that shape the response but live outside
// core.Options (cycle budget, observe), and the canonical option
// serialization. Everything that can change a single response byte is
// in here. warm_start_cycles cannot change a byte (an exact restore is
// byte-identical to the cold run) but is keyed anyway, so warm
// requests always exercise — and therefore always report — the
// snapshot path instead of aliasing a cold run's cached result.
func requestKey(workload string, maxCycles, warmCycles uint64, observe bool, opts core.Options) string {
	payload := fmt.Sprintf("workload=%s;max_cycles=%d;warm_start_cycles=%d;observe=%t;%s",
		workload, maxCycles, warmCycles, observe, opts.CanonicalString())
	sum := sha256.Sum256([]byte(payload))
	return hex.EncodeToString(sum[:])
}

// snapshotKey is the content address of a warm-start prefix snapshot:
// the workload, the pause cycle, the observer switch (it changes the
// snapshot's component set) and the exact canonical options. Requests
// that differ only in max_cycles share the snapshot — that is the
// serve-level reuse axis; sampling-interval divergence is served at
// the bench layer (Engine.RunFrom), not through this cache, so every
// stored prefix replays byte-identically.
func snapshotKey(workload string, warmCycles uint64, observe bool, opts core.Options) string {
	payload := fmt.Sprintf("snapshot;workload=%s;warm_start_cycles=%d;observe=%t;%s",
		workload, warmCycles, observe, opts.CanonicalString())
	sum := sha256.Sum256([]byte(payload))
	return hex.EncodeToString(sum[:])
}

// handleRun is POST /run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	s.cRequests.Inc()

	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	res, err := s.resolve(req)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}

	// snapDisp is written only when this request leads the execution
	// (the closure runs synchronously in runCached's leader path);
	// result-cache hits and shared waiters never touch the snapshot
	// layer and carry no snapshot header.
	var snapDisp string
	body, disposition, err := s.runCached(r.Context(), res.key, func(ctx context.Context) ([]byte, error) {
		b, sd, err := s.execute(ctx, res)
		snapDisp = sd
		return b, err
	})
	if err != nil {
		if isCancellation(err) {
			s.cCancelled.Inc()
		}
		s.writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Hpmvmd-Cache", disposition)
	w.Header().Set("X-Hpmvmd-Key", res.key)
	if snapDisp != "" {
		w.Header().Set("X-Hpmvmd-Snapshot", snapDisp)
	}
	w.Write(body)
}

// execute admits one run through the bounded queue, schedules it on
// the engine with the configured timeout, and marshals the response.
// The second return is the snapshot disposition ("hit" or "store")
// for warm-started requests, "" otherwise.
func (s *Server) execute(ctx context.Context, res resolved) ([]byte, string, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, "", ErrDraining
	}
	capacity := s.cfg.Jobs + s.cfg.QueueDepth
	if s.outstanding >= capacity {
		s.mu.Unlock()
		s.cRejected.Inc()
		return nil, "", fmt.Errorf("%w: %d runs outstanding (workers %d + queue %d)",
			ErrQueueFull, capacity, s.cfg.Jobs, s.cfg.QueueDepth)
	}
	s.outstanding++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.outstanding--
		s.mu.Unlock()
	}()

	runCtx := ctx
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	start := time.Now()
	var (
		body     []byte
		snapDisp string
		err      error
	)
	if res.warmCycles > 0 {
		body, snapDisp, err = s.executeWarm(runCtx, res)
	} else {
		var result *bench.Result
		result, err = s.runner(runCtx, res.meta.builder, res.cfg, res.meta.name)
		if err == nil {
			body, err = marshalResponse(res, result)
		}
	}
	s.recordLatency(res.meta.name, time.Since(start), err)
	if err != nil {
		if !isCancellation(err) {
			s.cFailed.Inc()
		}
		return nil, snapDisp, err
	}
	s.cExecuted.Inc()
	return body, snapDisp, nil
}

// executeWarm serves a warm-started run: obtain the prefix snapshot
// (cached or freshly computed), restore it into a fresh system and
// simulate only the tail. Both the prefix and the tail run on the
// engine, so warm requests respect the same worker-pool width as cold
// ones.
func (s *Server) executeWarm(ctx context.Context, res resolved) ([]byte, string, error) {
	snapshot, disp, err := s.snapshotFor(ctx, res)
	if err != nil {
		return nil, "", err
	}
	var result *bench.Result
	wait := s.engine.SubmitIsolated(res.meta.name+"/warm", func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		r, _, err := bench.RunFromSnapshotContext(ctx, res.meta.builder, res.cfg, snapshot)
		if err != nil {
			return err
		}
		result = r
		return nil
	})
	if err := wait(); err != nil {
		return nil, disp, err
	}
	body, err := marshalResponse(res, result)
	return body, disp, err
}

// snapshotFor returns the encoded prefix snapshot for res: the cached
// one when present ("hit"), else it simulates the prefix, stores the
// snapshot and returns it ("store"). Either way the caller restores
// the snapshot into a fresh system for the response, so hit and store
// produce byte-identical bodies.
func (s *Server) snapshotFor(ctx context.Context, res resolved) ([]byte, string, error) {
	s.mu.Lock()
	snapshot, ok := s.snapshots.get(res.snapKey)
	s.mu.Unlock()
	if ok {
		s.cSnapHits.Inc()
		return snapshot, "hit", nil
	}
	var enc []byte
	wait := s.engine.SubmitIsolated(res.meta.name+"/prefix", func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		enc, err = bench.RunPrefixContext(ctx, res.meta.builder, res.cfg, res.warmCycles)
		return err
	})
	if err := wait(); err != nil {
		return nil, "", err
	}
	s.mu.Lock()
	evicted := s.snapshots.add(res.snapKey, enc)
	s.mu.Unlock()
	s.cSnapStore.Inc()
	if evicted > 0 {
		s.cSnapEvict.Add(uint64(evicted))
	}
	return enc, "store", nil
}

// engineRunner is the production runner: one isolated, cancellable
// engine submission per request.
func (s *Server) engineRunner(ctx context.Context, b bench.Builder, cfg bench.RunConfig, label string) (*bench.Result, error) {
	h := s.engine.RunAsyncContext(ctx, b, cfg, label)
	if err := h.Wait(); err != nil {
		return nil, err
	}
	return h.Result(), nil
}

// marshalResponse renders the canonical response body. The field
// layout is fixed and every nested struct is map-free, so identical
// results marshal to identical bytes.
func marshalResponse(res resolved, r *bench.Result) ([]byte, error) {
	resp := RunResponse{
		Workload:      res.meta.name,
		Key:           res.key,
		HeapBytes:     r.HeapBytes,
		Collector:     res.opts.Collector.String(),
		Seed:          res.opts.Seed,
		Cycles:        r.Cycles,
		Instret:       r.Instret,
		Results:       r.Results,
		Cache:         r.Cache,
		MinorGCs:      r.MinorGCs,
		MajorGCs:      r.MajorGCs,
		GCCycles:      r.GCCycles,
		CoallocPairs:  r.CoallocPairs,
		Fragmentation: r.Fragmentation,
		SamplesTaken:  r.SamplesTaken,
		Obs:           r.Obs,
	}
	if r.Instret > 0 {
		resp.CPI = float64(r.Cycles) / float64(r.Instret)
	}
	if res.opts.Monitoring {
		ms := r.MonitorStats
		resp.Monitor = &ms
	}
	if res.opts.Sampling != nil {
		resp.Sampled = true
		resp.Estimated = r.Estimated
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal response: %w", err)
	}
	return append(body, '\n'), nil
}

// recordLatency accumulates per-workload wall-clock accounting.
func (s *Server) recordLatency(name string, d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.perWorkload[name]
	if st == nil {
		st = &wlStat{}
		s.perWorkload[name] = st
	}
	st.runs++
	st.total += d
	if d > st.max {
		st.max = d
	}
	if err != nil {
		st.errors++
	}
}

// handleHealthz is GET /healthz: 200 while serving, 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// WorkloadLatency is one workload's /statsz latency row.
type WorkloadLatency struct {
	Workload string  `json:"workload"`
	Runs     uint64  `json:"runs"`
	Errors   uint64  `json:"errors"`
	MeanMS   float64 `json:"mean_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// Statsz is the GET /statsz body.
type Statsz struct {
	Draining bool `json:"draining"`

	Queue struct {
		Jobs        int `json:"jobs"`
		Depth       int `json:"depth"`
		Outstanding int `json:"outstanding"`
	} `json:"queue"`

	Cache struct {
		Entries   int     `json:"entries"`
		Capacity  int     `json:"capacity"`
		Hits      uint64  `json:"hits"`
		Shared    uint64  `json:"shared"`
		Misses    uint64  `json:"misses"`
		Evictions uint64  `json:"evictions"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"cache"`

	Snapshots struct {
		Entries   int    `json:"entries"`
		Capacity  int    `json:"capacity"`
		Hits      uint64 `json:"hits"`
		Stores    uint64 `json:"stores"`
		Evictions uint64 `json:"evictions"`
	} `json:"snapshots"`

	Workloads []WorkloadLatency  `json:"workloads"`
	Counters  []obs.CounterValue `json:"counters"`
}

// Stats snapshots the service counters (also served as /statsz).
func (s *Server) Stats() Statsz {
	metrics := s.obs.Metrics() // before s.mu: the sampled closure locks it

	var st Statsz
	s.mu.Lock()
	st.Draining = s.draining
	st.Queue.Jobs = s.cfg.Jobs
	st.Queue.Depth = s.cfg.QueueDepth
	st.Queue.Outstanding = s.outstanding
	st.Cache.Entries = s.cache.len()
	st.Cache.Capacity = s.cfg.CacheEntries
	st.Snapshots.Entries = s.snapshots.len()
	st.Snapshots.Capacity = s.cfg.SnapshotEntries
	for name, w := range s.perWorkload {
		row := WorkloadLatency{
			Workload: name,
			Runs:     w.runs,
			Errors:   w.errors,
			MaxMS:    float64(w.max) / float64(time.Millisecond),
		}
		if w.runs > 0 {
			row.MeanMS = float64(w.total) / float64(w.runs) / float64(time.Millisecond)
		}
		st.Workloads = append(st.Workloads, row)
	}
	s.mu.Unlock()

	st.Cache.Hits = s.cHits.Value()
	st.Cache.Shared = s.cShared.Value()
	st.Cache.Misses = s.cMisses.Value()
	st.Cache.Evictions = s.cEvictions.Value()
	st.Snapshots.Hits = s.cSnapHits.Value()
	st.Snapshots.Stores = s.cSnapStore.Value()
	st.Snapshots.Evictions = s.cSnapEvict.Value()
	if served := st.Cache.Hits + st.Cache.Shared + st.Cache.Misses; served > 0 {
		st.Cache.HitRate = float64(st.Cache.Hits+st.Cache.Shared) / float64(served)
	}
	sort.Slice(st.Workloads, func(i, j int) bool { return st.Workloads[i].Workload < st.Workloads[j].Workload })
	st.Counters = metrics.Counters
	return st
}

// handleStatsz is GET /statsz.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// workloadInfo is one /workloads row.
type workloadInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	MinHeap     uint64 `json:"min_heap"`
	HotField    string `json:"hot_field,omitempty"`
}

// handleWorkloads is GET /workloads: the registry with calibration.
func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	rows := make([]workloadInfo, 0, len(s.meta))
	for _, m := range s.meta {
		rows = append(rows, workloadInfo{Name: m.name, Description: m.description, MinHeap: m.minHeap, HotField: m.hotField})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rows)
}

// statusFor maps service errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, bench.ErrUnknownWorkload):
		return http.StatusNotFound
	case errors.Is(err, core.ErrBadOptions):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; the status is never seen.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeError renders the JSON error envelope.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}
