// Package serve is the hpmvmd run service: a long-lived HTTP/JSON
// front end over the simulation stack. It accepts run requests
// (workload, heap, collector, monitoring, co-allocation, seed),
// schedules them on the internal/bench worker-pool engine, and returns
// the full result — timing, cache statistics, GC statistics,
// co-allocation pairs, and optionally the obs metrics snapshot.
//
// Because a run is fully deterministic in (workload, resolved
// core.Options, seed), the service fronts the engine with a
// content-addressed deterministic result cache: requests are
// canonicalized (bench.RunConfig.Resolve + core's canonical
// serialization), hashed, and identical requests replay the stored
// response bytes. Single-flight deduplication makes N concurrent
// identical requests cost one simulation. Production plumbing:
// per-request timeouts, cooperative cancellation threaded down to the
// VM's safepoints, a bounded queue with 429 backpressure, graceful
// drain, and /v1/healthz + /v1/statsz fed by internal/obs counters.
//
// The wire contract lives in internal/api ("v1"): every endpoint is
// rooted at /v1/, with the pre-v1 unversioned paths kept as deprecated
// aliases, and every error answers with the api.Error envelope
// carrying a stable machine-readable code. Long runs can stream:
// POST /v1/stream serves the same run as Server-Sent Events —
// heartbeat progress frames, then the byte-identical result body.
//
// This package also houses the fleet coordinator (fleet.go): the same
// contract served by a supervisor fanning requests out over N worker
// backends with snapshot-sticky routing and queue-overflow stealing.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"hpmvm/internal/api"
	"hpmvm/internal/bench"
	"hpmvm/internal/core"
	"hpmvm/internal/obs"
	"hpmvm/internal/opt"
)

// ErrQueueFull is the sentinel returned (and mapped to HTTP 429 /
// api.CodeQueueFull) when the run queue is at capacity.
var ErrQueueFull = errors.New("serve: queue full")

// ErrDraining is returned (HTTP 503 / api.CodeDraining) once the
// server began its graceful drain and no longer accepts new runs.
var ErrDraining = errors.New("serve: draining")

// errMethod is mapped to HTTP 405 / api.CodeMethodNotAllowed.
var errMethod = errors.New("serve: POST only")

// maxRequestBody bounds a /v1/run request body.
const maxRequestBody = 1 << 20

// Aliases for the wire types this package historically owned; the
// contract now lives in internal/api.
type (
	// Request is the JSON body of POST /v1/run.
	Request = api.Request
	// RunResponse is the JSON body of a successful run.
	RunResponse = api.RunResponse
	// Statsz is the GET /v1/statsz body.
	Statsz = api.Statsz
	// WorkloadLatency is one workload's statsz latency row.
	WorkloadLatency = api.WorkloadLatency
)

// Config tunes a Server.
type Config struct {
	// Jobs is the worker-pool width (0 selects bench.DefaultJobs).
	Jobs int
	// QueueDepth bounds how many runs may be outstanding beyond the
	// worker width before new requests are rejected with ErrQueueFull
	// (0 selects 64).
	QueueDepth int
	// CacheEntries bounds the result cache (0 selects 256).
	CacheEntries int
	// SnapshotEntries bounds the warm-start snapshot-prefix cache.
	// Snapshots are whole-machine images (megabytes each), so the
	// default is small (0 selects 8).
	SnapshotEntries int
	// Timeout caps one run's wall clock; the run is cancelled at its
	// next safepoint when exceeded (0 = no cap).
	Timeout time.Duration
	// StreamHeartbeat is the /v1/stream progress-frame interval
	// (0 selects 1s).
	StreamHeartbeat time.Duration
}

// wlStat is the per-workload latency accounting surfaced by /v1/statsz.
type wlStat struct {
	runs   uint64
	errors uint64
	total  time.Duration
	max    time.Duration
}

// Server is the run service. Create with New, mount Handler on an
// http.Server.
type Server struct {
	cfg      Config
	engine   *bench.Engine
	obs      *obs.Observer
	resolver *Resolver
	// runner executes one run; tests swap it to count and gate
	// executions.
	runner func(ctx context.Context, b bench.Builder, cfg bench.RunConfig, label string) (*bench.Result, error)

	// Owned obs counters (also visible in /v1/statsz).
	cRequests  *obs.Counter
	cHits      *obs.Counter
	cShared    *obs.Counter
	cMisses    *obs.Counter
	cEvictions *obs.Counter
	cRejected  *obs.Counter
	cExecuted  *obs.Counter
	cFailed    *obs.Counter
	cCancelled *obs.Counter
	cSnapHits  *obs.Counter
	cSnapStore *obs.Counter
	cSnapEvict *obs.Counter
	cStreams   *obs.Counter

	mu          sync.Mutex
	cache       *resultCache
	snapshots   *resultCache
	inflight    map[string]*call
	outstanding int
	draining    bool
	perWorkload map[string]*wlStat
	// perOpt accumulates decision/revert counters per managed
	// optimization kind across executed runs (cache hits replay bytes
	// and do not execute, so they do not count).
	perOpt map[string]opt.KindStats
}

// New builds a Server over the frozen workload registry. It invokes
// every registered builder once to capture the calibrated minimum heap
// and hot field each workload canonicalizes with.
func New(cfg Config) *Server {
	if cfg.Jobs <= 0 {
		cfg.Jobs = bench.DefaultJobs()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.SnapshotEntries <= 0 {
		cfg.SnapshotEntries = 8
	}
	if cfg.StreamHeartbeat <= 0 {
		cfg.StreamHeartbeat = time.Second
	}
	s := &Server{
		cfg:         cfg,
		engine:      bench.NewEngine(cfg.Jobs),
		obs:         obs.New(0),
		resolver:    newResolver(),
		cache:       newResultCache(cfg.CacheEntries),
		snapshots:   newResultCache(cfg.SnapshotEntries),
		inflight:    make(map[string]*call),
		perWorkload: make(map[string]*wlStat),
		perOpt:      make(map[string]opt.KindStats),
	}
	s.runner = s.engineRunner
	s.cRequests = s.obs.Counter("serve.requests")
	s.cHits = s.obs.Counter("serve.cache.hits")
	s.cShared = s.obs.Counter("serve.cache.shared")
	s.cMisses = s.obs.Counter("serve.cache.misses")
	s.cEvictions = s.obs.Counter("serve.cache.evictions")
	s.cRejected = s.obs.Counter("serve.queue.rejected")
	s.cExecuted = s.obs.Counter("serve.runs.executed")
	s.cFailed = s.obs.Counter("serve.runs.failed")
	s.cCancelled = s.obs.Counter("serve.runs.cancelled")
	s.cSnapHits = s.obs.Counter("serve.snapshot.hits")
	s.cSnapStore = s.obs.Counter("serve.snapshot.stores")
	s.cSnapEvict = s.obs.Counter("serve.snapshot.evictions")
	s.cStreams = s.obs.Counter("serve.streams")
	s.obs.RegisterSampled("serve.queue.outstanding", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return uint64(s.outstanding)
	})
	return s
}

// Drain stops admitting new runs; /v1/run answers 503 and /v1/healthz
// flips to draining so load balancers pull the instance. In-flight
// runs finish normally (http.Server.Shutdown waits for their
// handlers).
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// deprecatedAlias wraps a handler for a pre-v1 unversioned path: same
// behavior, plus the RFC 8594 Deprecation header and a Link to the
// successor path.
func deprecatedAlias(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.HeaderDeprecation, "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// Handler returns the service mux: the /v1 contract plus the
// deprecated unversioned aliases.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathRun, s.handleRun)
	mux.HandleFunc(api.PathStream, s.handleStream)
	mux.HandleFunc(api.PathHealthz, s.handleHealthz)
	mux.HandleFunc(api.PathStatsz, s.handleStatsz)
	mux.HandleFunc(api.PathWorkloads, s.handleWorkloads)
	mux.HandleFunc(api.LegacyPathRun, deprecatedAlias(api.PathRun, s.handleRun))
	mux.HandleFunc(api.LegacyPathHealthz, deprecatedAlias(api.PathHealthz, s.handleHealthz))
	mux.HandleFunc(api.LegacyPathStatsz, deprecatedAlias(api.PathStatsz, s.handleStatsz))
	mux.HandleFunc(api.LegacyPathWorkloads, deprecatedAlias(api.PathWorkloads, s.handleWorkloads))
	return mux
}

// decodeRequest reads and validates one JSON request body.
func decodeRequest(w http.ResponseWriter, r *http.Request) (api.Request, error) {
	var req api.Request
	if r.Method != http.MethodPost {
		return req, errMethod
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("serve: %w: bad request body: %v", core.ErrBadOptions, err)
	}
	return req, nil
}

// RunBytes executes (or replays) one run and returns the transport
// view: the exact response bytes plus the cache/snapshot dispositions
// the X-Hpmvmd-* headers carry. It is the programmatic core of
// POST /v1/run, shared by the HTTP handler, the stream handler and
// the in-process fleet backend.
func (s *Server) RunBytes(ctx context.Context, req api.Request) (*api.RunResult, error) {
	s.cRequests.Inc()
	res, err := s.resolver.resolve(req)
	if err != nil {
		return nil, err
	}
	return s.runResolved(ctx, res)
}

// runResolved serves an already-resolved request through the cache +
// single-flight front door.
func (s *Server) runResolved(ctx context.Context, res resolved) (*api.RunResult, error) {
	// snapDisp is written only when this request leads the execution
	// (the closure runs synchronously in runCached's leader path);
	// result-cache hits and shared waiters never touch the snapshot
	// layer and carry no snapshot disposition.
	var snapDisp string
	body, disposition, err := s.runCached(ctx, res.key, func(ctx context.Context) ([]byte, error) {
		b, sd, err := s.execute(ctx, res)
		snapDisp = sd
		return b, err
	})
	if err != nil {
		if isCancellation(err) {
			s.cCancelled.Inc()
		}
		return nil, err
	}
	return &api.RunResult{Body: body, Key: res.key, Cache: disposition, Snapshot: snapDisp}, nil
}

// handleRun is POST /v1/run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	result, err := s.RunBytes(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeRunResult(w, result)
}

// writeRunResult renders a successful run: disposition headers plus
// the exact body bytes.
func writeRunResult(w http.ResponseWriter, res *api.RunResult) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(api.HeaderCache, res.Cache)
	w.Header().Set(api.HeaderKey, res.Key)
	if res.Snapshot != "" {
		w.Header().Set(api.HeaderSnapshot, res.Snapshot)
	}
	if res.Worker != "" {
		w.Header().Set(api.HeaderWorker, res.Worker)
	}
	w.Write(res.Body)
}

// execute admits one run through the bounded queue, schedules it on
// the engine with the configured timeout, and marshals the response.
// The second return is the snapshot disposition ("hit" or "store")
// for warm-started requests, "" otherwise.
func (s *Server) execute(ctx context.Context, res resolved) ([]byte, string, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, "", ErrDraining
	}
	capacity := s.cfg.Jobs + s.cfg.QueueDepth
	if s.outstanding >= capacity {
		s.mu.Unlock()
		s.cRejected.Inc()
		return nil, "", fmt.Errorf("%w: %d runs outstanding (workers %d + queue %d)",
			ErrQueueFull, capacity, s.cfg.Jobs, s.cfg.QueueDepth)
	}
	s.outstanding++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.outstanding--
		s.mu.Unlock()
	}()

	runCtx := ctx
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	start := time.Now()
	var (
		body     []byte
		snapDisp string
		err      error
	)
	if res.warmCycles > 0 {
		body, snapDisp, err = s.executeWarm(runCtx, res)
	} else {
		var result *bench.Result
		result, err = s.runner(runCtx, res.meta.builder, res.cfg, res.meta.name)
		if err == nil {
			s.recordOptStats(result)
			body, err = marshalResponse(res, result)
		}
	}
	s.recordLatency(res.meta.name, time.Since(start), err)
	if err != nil {
		if !isCancellation(err) {
			s.cFailed.Inc()
		}
		return nil, snapDisp, err
	}
	s.cExecuted.Inc()
	return body, snapDisp, nil
}

// executeWarm serves a warm-started run: obtain the prefix snapshot
// (cached or freshly computed), restore it into a fresh system and
// simulate only the tail. Both the prefix and the tail run on the
// engine, so warm requests respect the same worker-pool width as cold
// ones.
func (s *Server) executeWarm(ctx context.Context, res resolved) ([]byte, string, error) {
	snapshot, disp, err := s.snapshotFor(ctx, res)
	if err != nil {
		return nil, "", err
	}
	var result *bench.Result
	wait := s.engine.SubmitIsolated(res.meta.name+"/warm", func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		r, _, err := bench.RunFromSnapshotContext(ctx, res.meta.builder, res.cfg, snapshot)
		if err != nil {
			return err
		}
		result = r
		return nil
	})
	if err := wait(); err != nil {
		return nil, disp, err
	}
	s.recordOptStats(result)
	body, err := marshalResponse(res, result)
	return body, disp, err
}

// recordOptStats folds one executed run's per-kind optimization
// counters into the server totals surfaced by /v1/statsz.
func (s *Server) recordOptStats(r *bench.Result) {
	if len(r.Opt) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range r.Opt {
		row := s.perOpt[k.Kind]
		row.Kind = k.Kind
		row.Decisions += k.Decisions
		row.Reverts += k.Reverts
		s.perOpt[k.Kind] = row
	}
}

// snapshotFor returns the encoded prefix snapshot for res: the cached
// one when present ("hit"), else it simulates the prefix, stores the
// snapshot and returns it ("store"). Either way the caller restores
// the snapshot into a fresh system for the response, so hit and store
// produce byte-identical bodies.
func (s *Server) snapshotFor(ctx context.Context, res resolved) ([]byte, string, error) {
	s.mu.Lock()
	snapshot, ok := s.snapshots.get(res.snapKey)
	s.mu.Unlock()
	if ok {
		s.cSnapHits.Inc()
		return snapshot, "hit", nil
	}
	var enc []byte
	wait := s.engine.SubmitIsolated(res.meta.name+"/prefix", func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		enc, err = bench.RunPrefixContext(ctx, res.meta.builder, res.cfg, res.warmCycles)
		return err
	})
	if err := wait(); err != nil {
		return nil, "", err
	}
	s.mu.Lock()
	evicted := s.snapshots.add(res.snapKey, enc)
	s.mu.Unlock()
	s.cSnapStore.Inc()
	if evicted > 0 {
		s.cSnapEvict.Add(uint64(evicted))
	}
	return enc, "store", nil
}

// engineRunner is the production runner: one isolated, cancellable
// engine submission per request.
func (s *Server) engineRunner(ctx context.Context, b bench.Builder, cfg bench.RunConfig, label string) (*bench.Result, error) {
	h := s.engine.RunAsyncContext(ctx, b, cfg, label)
	if err := h.Wait(); err != nil {
		return nil, err
	}
	return h.Result(), nil
}

// marshalResponse renders the canonical response body. The field
// layout is fixed and every nested struct is map-free, so identical
// results marshal to identical bytes.
func marshalResponse(res resolved, r *bench.Result) ([]byte, error) {
	resp := api.RunResponse{
		Version:       api.Version,
		Workload:      res.meta.name,
		Key:           res.key,
		HeapBytes:     r.HeapBytes,
		Collector:     res.opts.Collector.String(),
		Seed:          res.opts.Seed,
		Cycles:        r.Cycles,
		Instret:       r.Instret,
		Results:       r.Results,
		Cache:         r.Cache,
		MinorGCs:      r.MinorGCs,
		MajorGCs:      r.MajorGCs,
		GCCycles:      r.GCCycles,
		CoallocPairs:  r.CoallocPairs,
		Fragmentation: r.Fragmentation,
		SamplesTaken:  r.SamplesTaken,
		Obs:           r.Obs,
	}
	if r.Instret > 0 {
		resp.CPI = float64(r.Cycles) / float64(r.Instret)
	}
	if res.opts.Monitoring {
		ms := r.MonitorStats
		resp.Monitor = &ms
	}
	if res.opts.Sampling != nil {
		resp.Sampled = true
		resp.Estimated = r.Estimated
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal response: %w", err)
	}
	return append(body, '\n'), nil
}

// recordLatency accumulates per-workload wall-clock accounting.
func (s *Server) recordLatency(name string, d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.perWorkload[name]
	if st == nil {
		st = &wlStat{}
		s.perWorkload[name] = st
	}
	st.runs++
	st.total += d
	if d > st.max {
		st.max = d
	}
	if err != nil {
		st.errors++
	}
}

// handleHealthz is GET /v1/healthz: 200 while serving, 503 once
// draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// Stats snapshots the service counters (also served as /v1/statsz).
func (s *Server) Stats() api.Statsz {
	metrics := s.obs.Metrics() // before s.mu: the sampled closure locks it

	var st api.Statsz
	st.Version = api.Version
	s.mu.Lock()
	st.Draining = s.draining
	st.Queue.Jobs = s.cfg.Jobs
	st.Queue.Depth = s.cfg.QueueDepth
	st.Queue.Outstanding = s.outstanding
	st.Cache.Entries = s.cache.len()
	st.Cache.Capacity = s.cfg.CacheEntries
	st.Snapshots.Entries = s.snapshots.len()
	st.Snapshots.Capacity = s.cfg.SnapshotEntries
	for name, w := range s.perWorkload {
		row := api.WorkloadLatency{
			Workload: name,
			Runs:     w.runs,
			Errors:   w.errors,
			MaxMS:    float64(w.max) / float64(time.Millisecond),
		}
		if w.runs > 0 {
			row.MeanMS = float64(w.total) / float64(w.runs) / float64(time.Millisecond)
		}
		st.Workloads = append(st.Workloads, row)
	}
	for _, row := range s.perOpt {
		st.Optimizations = append(st.Optimizations, row)
	}
	s.mu.Unlock()

	st.Cache.Hits = s.cHits.Value()
	st.Cache.Shared = s.cShared.Value()
	st.Cache.Misses = s.cMisses.Value()
	st.Cache.Evictions = s.cEvictions.Value()
	st.Snapshots.Hits = s.cSnapHits.Value()
	st.Snapshots.Stores = s.cSnapStore.Value()
	st.Snapshots.Evictions = s.cSnapEvict.Value()
	if served := st.Cache.Hits + st.Cache.Shared + st.Cache.Misses; served > 0 {
		st.Cache.HitRate = float64(st.Cache.Hits+st.Cache.Shared) / float64(served)
	}
	sort.Slice(st.Workloads, func(i, j int) bool { return st.Workloads[i].Workload < st.Workloads[j].Workload })
	sort.Slice(st.Optimizations, func(i, j int) bool { return st.Optimizations[i].Kind < st.Optimizations[j].Kind })
	st.Counters = metrics.Counters
	return st
}

// handleStatsz is GET /v1/statsz.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// Workloads returns the registry rows served at /v1/workloads.
func (s *Server) Workloads() []api.WorkloadInfo {
	rows := s.resolver.workloads()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// handleWorkloads is GET /v1/workloads: the registry with calibration.
func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Workloads())
}

// statusFor maps service errors onto (HTTP status, stable error code).
// The table-driven TestStatusFor pins every sentinel's mapping.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, bench.ErrUnknownWorkload):
		return http.StatusNotFound, api.CodeUnknownWorkload
	case errors.Is(err, core.ErrBadOptions):
		return http.StatusBadRequest, api.CodeBadRequest
	case errors.Is(err, errMethod):
		return http.StatusMethodNotAllowed, api.CodeMethodNotAllowed
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, api.CodeQueueFull
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, api.CodeDraining
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, api.CodeTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; the status is never seen.
		return http.StatusServiceUnavailable, api.CodeCancelled
	default:
		return http.StatusInternalServerError, api.CodeInternal
	}
}

// toAPIError wraps any service error into the api.Error envelope. An
// error that already is an envelope (a fleet relaying a worker's
// refusal) passes through unchanged, keeping the worker's code.
func toAPIError(err error) *api.Error {
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae
	}
	_, code := statusFor(err)
	out := &api.Error{Version: api.Version, Message: err.Error(), Code: code}
	if code == api.CodeQueueFull {
		out.RetryAfter = 1
	}
	return out
}

// writeError renders the JSON error envelope with its mapped status.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	writeAPIError(w, toAPIError(err))
}

// writeAPIError renders an api.Error envelope.
func writeAPIError(w http.ResponseWriter, ae *api.Error) {
	w.Header().Set("Content-Type", "application/json")
	if ae.RetryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", ae.RetryAfter))
	}
	w.WriteHeader(api.StatusForCode(ae.Code))
	json.NewEncoder(w).Encode(ae)
}
