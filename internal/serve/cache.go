package serve

import (
	"container/list"
	"context"
	"errors"
)

// This file implements the deterministic result cache: an LRU-bounded
// map from canonical request fingerprint to the exact marshaled
// response bytes, fronted by single-flight deduplication. Runs are
// fully deterministic in their canonical key (see core's cache-key
// contract), so replaying stored bytes is indistinguishable from
// re-simulating — byte-identical by construction, and N concurrent
// identical requests cost one simulation.

// cacheEntry is one cached response.
type cacheEntry struct {
	key  string
	body []byte
}

// resultCache is a plain LRU over response bodies. Not safe for
// concurrent use; the Server serializes access under its mutex.
type resultCache struct {
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached body and marks the entry most recently used.
func (c *resultCache) get(key string) ([]byte, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// add inserts (or refreshes) an entry and returns how many entries
// were evicted to stay within capacity.
func (c *resultCache) add(key string, body []byte) int {
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return 0
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	evicted := 0
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

func (c *resultCache) len() int { return c.ll.Len() }

// call is one in-flight single-flight execution. body and err are
// written before done is closed; waiters read them only after done.
type call struct {
	done chan struct{}
	body []byte
	err  error
}

// runCached is the cache + single-flight front door. It returns the
// response bytes for key, the cache disposition ("hit", "shared",
// "miss"), and an error.
//
//   - A cached key replays the stored bytes ("hit").
//   - A key already executing makes this request wait for the leader's
//     result ("shared") — N concurrent identical requests simulate
//     once.
//   - Otherwise this request becomes the leader and runs exec ("miss");
//     a successful body is stored for future hits.
//
// Cancellation cannot poison the cache: only a successful exec stores
// a body, and a leader that aborts on its own context wakes its
// waiters to retry — the first retryer becomes the new leader under
// its own, still-live context. A waiter whose own ctx dies stops
// waiting immediately.
func (s *Server) runCached(ctx context.Context, key string, exec func(context.Context) ([]byte, error)) ([]byte, string, error) {
	for {
		s.mu.Lock()
		if body, ok := s.cache.get(key); ok {
			s.mu.Unlock()
			s.cHits.Inc()
			return body, "hit", nil
		}
		if c, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			select {
			case <-c.done:
				if c.err == nil {
					s.cShared.Inc()
					return c.body, "shared", nil
				}
				if isCancellation(c.err) {
					// The leader was cancelled, not the run refuted:
					// retry — the result may now be cached by another
					// leader, or we become the leader ourselves.
					continue
				}
				// Deterministic run failure: every identical request
				// would fail identically, so share the error.
				return nil, "miss", c.err
			case <-ctx.Done():
				return nil, "miss", ctx.Err()
			}
		}
		c := &call{done: make(chan struct{})}
		s.inflight[key] = c
		s.mu.Unlock()

		body, err := exec(ctx)

		s.mu.Lock()
		delete(s.inflight, key)
		if err == nil {
			s.cMisses.Inc()
			if n := s.cache.add(key, body); n > 0 {
				s.cEvictions.Add(uint64(n))
			}
		}
		s.mu.Unlock()
		c.body, c.err = body, err
		close(c.done)
		return body, "miss", err
	}
}

// isCancellation reports whether err stems from a cancelled or expired
// context rather than from the simulation itself.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
