package serve

import (
	"bytes"
	"context"
	"net/http"
	"time"

	"hpmvm/internal/api"
)

// This file implements POST /v1/stream: the same run contract as
// /v1/run, delivered as Server-Sent Events so long simulations report
// liveness instead of holding a silent connection (api/stream.go
// documents the frame sequence). The result frame carries byte-for-
// byte the /v1/run response body, so streaming never forks the
// determinism contract — a fact TestStreamResultByteIdentical pins.

// handleStream is POST /v1/stream on a single-process server.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.cRequests.Inc()
	res, err := s.resolver.resolve(req)
	if err != nil {
		// Pre-admission failures answer as plain JSON errors: the
		// stream only opens once the request is valid.
		s.writeError(w, err)
		return
	}
	s.cStreams.Inc()
	queued := api.StreamQueued{Version: api.Version, Workload: res.meta.name, Key: res.key}
	serveStream(w, r, s.cfg.StreamHeartbeat, queued, func(ctx context.Context) (*api.RunResult, error) {
		return s.runResolved(ctx, res)
	})
}

// serveStream drives one run stream: queued frame, heartbeat progress
// frames while run executes, then meta + result (or a terminal error
// frame). Shared by the single-process server and the fleet
// coordinator.
func serveStream(w http.ResponseWriter, r *http.Request, heartbeat time.Duration, queued api.StreamQueued, run func(context.Context) (*api.RunResult, error)) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	// Proxies must not buffer run streams: the heartbeat is the point.
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	if err := api.WriteStreamJSON(w, api.EventQueued, queued); err != nil {
		return
	}
	flush()

	type outcome struct {
		res *api.RunResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := run(r.Context())
		done <- outcome{res, err}
	}()

	start := time.Now()
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := api.WriteStreamJSON(w, api.EventProgress, api.StreamProgress{
				ElapsedMS: time.Since(start).Milliseconds(),
			}); err != nil {
				// The client went away; the run keeps its own context and
				// aborts at its next safepoint.
				return
			}
			flush()
		case out := <-done:
			if out.err != nil {
				api.WriteStreamJSON(w, api.EventError, toAPIError(out.err))
				flush()
				return
			}
			api.WriteStreamJSON(w, api.EventMeta, api.StreamMeta{
				Cache:    out.res.Cache,
				Key:      out.res.Key,
				Snapshot: out.res.Snapshot,
				Worker:   out.res.Worker,
			})
			// The body is one JSON line plus a trailing newline; the SSE
			// data frame carries the line, the client restores the
			// newline — bytes.TrimSuffix + the client's re-append are
			// exact inverses, pinned by TestStreamResultByteIdentical.
			api.WriteStreamEvent(w, api.EventResult, bytes.TrimSuffix(out.res.Body, []byte("\n")))
			flush()
			return
		}
	}
}
