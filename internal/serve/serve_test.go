package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hpmvm/internal/api"
	"hpmvm/internal/bench"
	"hpmvm/internal/core"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

// The serve tests register their own deterministic workloads (the
// production registry lives behind the cmd binaries' blank import and
// is absent here). Register must run in init, before New freezes the
// registry.
func init() {
	bench.Register("serve_tiny", func() *bench.Program {
		return loopProgram("serve_tiny", 50_000)
	})
	// serve_slow is a run long enough (billions of simulated cycles)
	// that the cancellation tests always catch it mid-simulation.
	bench.Register("serve_slow", func() *bench.Program {
		return loopProgram("serve_slow", 2_000_000_000)
	})
}

// loopProgram builds a fresh n-iteration summing loop.
func loopProgram(name string, n int64) *bench.Program {
	u := classfile.NewUniverse()
	cl := u.DefineClass("Tiny", nil)
	main := u.AddMethod(cl, "main", false, nil, classfile.KindVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("i", classfile.KindInt)
	b.Local("s", classfile.KindInt)
	b.Label("loop")
	b.Load("i").Const(n).If(bytecode.OpIfGE, "done")
	b.Load("s").Load("i").Add().Store("s")
	b.Inc("i", 1)
	b.Goto("loop")
	b.Label("done")
	b.Load("s").Result()
	b.Return()
	b.MustBuild()
	u.Layout()
	prog := &bench.Program{
		Name:    name,
		U:       u,
		Entry:   main,
		MinHeap: 1 << 20,
	}
	if n == 50_000 {
		prog.Expected = []int64{n * (n - 1) / 2}
	}
	return prog
}

// doReq drives one request through the handler. A nil ctx uses the
// request's default context.
func doReq(h http.Handler, ctx context.Context, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func runBody(seed int) string {
	return fmt.Sprintf(`{"workload":"serve_tiny","seed":%d}`, seed)
}

// TestServeConcurrentMixed is the service's acceptance test (run under
// -race): 32 concurrent requests — 4 distinct configurations x 8
// identical requests each — drive the handler at once, verifying
//
//   - single-flight: the 8 identical requests per key cost exactly one
//     simulation (4 executions total),
//   - byte-identity: every response for a key, cold or cached, carries
//     identical bytes,
//   - cancellation: a request cancelled mid-simulation aborts with an
//     error and leaves the cache unpoisoned.
func TestServeConcurrentMixed(t *testing.T) {
	s := New(Config{Jobs: 4, QueueDepth: 64, CacheEntries: 16})
	h := s.Handler()

	const distinct, per = 4, 8
	var wg sync.WaitGroup
	var rrs [distinct][per]*httptest.ResponseRecorder
	for k := 0; k < distinct; k++ {
		for i := 0; i < per; i++ {
			k, i := k, i
			wg.Add(1)
			go func() {
				defer wg.Done()
				rrs[k][i] = doReq(h, nil, http.MethodPost, "/run", runBody(k+1))
			}()
		}
	}
	wg.Wait()

	bodies := make([][]byte, distinct)
	for k := 0; k < distinct; k++ {
		for i := 0; i < per; i++ {
			rr := rrs[k][i]
			if rr.Code != http.StatusOK {
				t.Fatalf("key %d req %d: status %d: %s", k, i, rr.Code, rr.Body.String())
			}
			switch d := rr.Header().Get("X-Hpmvmd-Cache"); d {
			case "hit", "shared", "miss":
			default:
				t.Fatalf("key %d req %d: bad cache disposition %q", k, i, d)
			}
			if i == 0 {
				bodies[k] = rr.Body.Bytes()
				continue
			}
			if !bytes.Equal(rr.Body.Bytes(), bodies[k]) {
				t.Errorf("key %d req %d: body differs from request 0 of the same key", k, i)
			}
		}
	}
	for k := 1; k < distinct; k++ {
		if bytes.Equal(bodies[k], bodies[0]) {
			t.Errorf("distinct seeds %d and 1 produced identical bodies", k+1)
		}
	}

	// Single-flight: 8 identical requests per key, one simulation each.
	if got := s.cExecuted.Value(); got != distinct {
		t.Errorf("executed %d simulations for %d distinct keys (single-flight broken)", got, distinct)
	}
	if got := s.cMisses.Value(); got != distinct {
		t.Errorf("cache misses = %d, want %d", got, distinct)
	}
	if shared := s.cHits.Value() + s.cShared.Value(); shared != distinct*(per-1) {
		t.Errorf("hits+shared = %d, want %d", shared, distinct*(per-1))
	}

	// Cold vs cached byte-identity: a fresh request for each key must
	// replay the exact bytes the cold run produced.
	for k := 0; k < distinct; k++ {
		rr := doReq(h, nil, http.MethodPost, "/run", runBody(k+1))
		if rr.Code != http.StatusOK {
			t.Fatalf("cached key %d: status %d", k, rr.Code)
		}
		if rr.Header().Get("X-Hpmvmd-Cache") != "hit" {
			t.Errorf("cached key %d: disposition %q, want hit", k, rr.Header().Get("X-Hpmvmd-Cache"))
		}
		if !bytes.Equal(rr.Body.Bytes(), bodies[k]) {
			t.Errorf("cached key %d: bytes differ from cold response", k)
		}
	}

	// Cancellation mid-simulation: serve_slow runs for billions of
	// simulated cycles; cancel its request shortly after dispatch. The
	// handler must come back with a cancellation status and the slow
	// key must not enter the cache.
	ctx, cancel := context.WithCancel(context.Background())
	slow := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		slow <- doReq(h, ctx, http.MethodPost, "/run", `{"workload":"serve_slow","seed":1}`)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	rr := <-slow
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled slow run: status %d, want 503: %s", rr.Code, rr.Body.String())
	}
	if got := s.cCancelled.Value(); got == 0 {
		t.Error("cancelled-run counter did not advance")
	}
	st := s.Stats()
	if st.Cache.Entries != distinct {
		t.Errorf("cache holds %d entries after cancelled run, want %d (cancellation must not cache)",
			st.Cache.Entries, distinct)
	}
}

// TestCancelledRequestDoesNotPoisonCache pins the full retry story: a
// request whose context is already dead fails without caching anything,
// and the next identical request runs cold and then caches normally.
func TestCancelledRequestDoesNotPoisonCache(t *testing.T) {
	s := New(Config{Jobs: 2, QueueDepth: 8, CacheEntries: 8})
	h := s.Handler()
	body := runBody(99)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rr := doReq(h, ctx, http.MethodPost, "/run", body)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-cancelled request: status %d, want 503", rr.Code)
	}
	if st := s.Stats(); st.Cache.Entries != 0 {
		t.Fatalf("cancelled request cached %d entries", st.Cache.Entries)
	}

	cold := doReq(h, nil, http.MethodPost, "/run", body)
	if cold.Code != http.StatusOK || cold.Header().Get("X-Hpmvmd-Cache") != "miss" {
		t.Fatalf("retry after cancel: status %d disposition %q, want 200/miss",
			cold.Code, cold.Header().Get("X-Hpmvmd-Cache"))
	}
	warm := doReq(h, nil, http.MethodPost, "/run", body)
	if warm.Code != http.StatusOK || warm.Header().Get("X-Hpmvmd-Cache") != "hit" {
		t.Fatalf("second retry: status %d disposition %q, want 200/hit",
			warm.Code, warm.Header().Get("X-Hpmvmd-Cache"))
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Error("cached bytes differ from cold bytes")
	}
}

// TestQueueFullBackpressure fills the bounded queue through a blocked
// runner and verifies the next request bounces with 429 + Retry-After
// while the admitted ones complete once unblocked.
func TestQueueFullBackpressure(t *testing.T) {
	s := New(Config{Jobs: 1, QueueDepth: 1, CacheEntries: 8})
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	s.runner = func(ctx context.Context, b bench.Builder, cfg bench.RunConfig, label string) (*bench.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &bench.Result{Program: label}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	h := s.Handler()

	// Capacity is Jobs+QueueDepth = 2: admit two distinct runs.
	results := make(chan *httptest.ResponseRecorder, 2)
	for seed := 1; seed <= 2; seed++ {
		seed := seed
		go func() {
			results <- doReq(h, nil, http.MethodPost, "/run", runBody(seed))
		}()
	}
	<-started
	<-started

	rr := doReq(h, nil, http.MethodPost, "/run", runBody(3))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: status %d, want 429: %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Retry-After") != "1" {
		t.Errorf("429 without Retry-After header")
	}
	if got := s.cRejected.Value(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if rr := <-results; rr.Code != http.StatusOK {
			t.Errorf("admitted request %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
	}
}

// TestDrain pins the graceful-drain contract: after Drain, /run and
// /healthz answer 503 so the load balancer pulls the instance, and
// /statsz reports the draining state.
func TestDrain(t *testing.T) {
	s := New(Config{Jobs: 1, QueueDepth: 1})
	h := s.Handler()
	s.Drain()

	if rr := doReq(h, nil, http.MethodPost, "/run", runBody(1)); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("/run while draining: status %d, want 503", rr.Code)
	}
	rr := doReq(h, nil, http.MethodGet, "/healthz", "")
	if rr.Code != http.StatusServiceUnavailable || !strings.Contains(rr.Body.String(), "draining") {
		t.Errorf("/healthz while draining: status %d body %q", rr.Code, rr.Body.String())
	}
	var st Statsz
	if err := json.Unmarshal(doReq(h, nil, http.MethodGet, "/statsz", "").Body.Bytes(), &st); err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if !st.Draining {
		t.Error("/statsz does not report draining")
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	cases := []struct {
		name   string
		method string
		body   string
		status int
		code   string
	}{
		{"wrong method", http.MethodGet, "", http.StatusMethodNotAllowed, api.CodeMethodNotAllowed},
		{"malformed json", http.MethodPost, `{`, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown field", http.MethodPost, `{"workload":"serve_tiny","bogus":1}`, http.StatusBadRequest, api.CodeBadRequest},
		{"bad api version", http.MethodPost, `{"workload":"serve_tiny","version":"v0"}`, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown workload", http.MethodPost, `{"workload":"nope"}`, http.StatusNotFound, api.CodeUnknownWorkload},
		{"unknown collector", http.MethodPost, `{"workload":"serve_tiny","collector":"zgc"}`, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown event", http.MethodPost, `{"workload":"serve_tiny","event":"l9"}`, http.StatusBadRequest, api.CodeBadRequest},
		{"coalloc on gencopy", http.MethodPost, `{"workload":"serve_tiny","collector":"gencopy","coalloc":true}`, http.StatusBadRequest, api.CodeBadRequest},
	}
	for _, path := range []string{api.PathRun, api.PathStream, "/run"} {
		for _, tc := range cases {
			rr := doReq(h, nil, tc.method, path, tc.body)
			if rr.Code != tc.status {
				t.Errorf("%s %s: status %d, want %d: %s", path, tc.name, rr.Code, tc.status, rr.Body.String())
			}
			var eb api.Error
			if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil || eb.Message == "" {
				t.Errorf("%s %s: error response is not the JSON envelope: %q", path, tc.name, rr.Body.String())
			} else if eb.Code != tc.code {
				t.Errorf("%s %s: code %q, want %q", path, tc.name, eb.Code, tc.code)
			}
		}
	}
}

// TestStatusFor pins the sentinel→(status, code) table: the codes are
// the machine-readable wire contract, so a remapping is a breaking
// change.
func TestStatusFor(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		code   string
	}{
		{"unknown workload", fmt.Errorf("x: %w", bench.ErrUnknownWorkload), http.StatusNotFound, api.CodeUnknownWorkload},
		{"bad options", fmt.Errorf("x: %w", core.ErrBadOptions), http.StatusBadRequest, api.CodeBadRequest},
		{"method", errMethod, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed},
		{"queue full", fmt.Errorf("%w: 65 outstanding", ErrQueueFull), http.StatusTooManyRequests, api.CodeQueueFull},
		{"draining", ErrDraining, http.StatusServiceUnavailable, api.CodeDraining},
		{"timeout", context.DeadlineExceeded, http.StatusGatewayTimeout, api.CodeTimeout},
		{"cancel", context.Canceled, http.StatusServiceUnavailable, api.CodeCancelled},
		{"run failure", fmt.Errorf("simulation exploded"), http.StatusInternalServerError, api.CodeInternal},
	}
	for _, tc := range cases {
		status, code := statusFor(tc.err)
		if status != tc.status || code != tc.code {
			t.Errorf("%s: statusFor = (%d, %q), want (%d, %q)", tc.name, status, code, tc.status, tc.code)
		}
		if got := api.StatusForCode(code); got != tc.status {
			t.Errorf("%s: StatusForCode(%q) = %d disagrees with statusFor's %d", tc.name, code, got, tc.status)
		}
		ae := toAPIError(tc.err)
		if ae.Code != tc.code {
			t.Errorf("%s: toAPIError code %q, want %q", tc.name, ae.Code, tc.code)
		}
		if (tc.code == api.CodeQueueFull) != (ae.RetryAfter > 0) {
			t.Errorf("%s: retry_after %d inconsistent with code %q", tc.name, ae.RetryAfter, ae.Code)
		}
	}
}

// TestDeprecatedAliases pins the pre-v1 paths: same handler, same
// bytes, plus the Deprecation header and successor Link.
func TestDeprecatedAliases(t *testing.T) {
	s := New(Config{Jobs: 1})
	h := s.Handler()
	legacy := doReq(h, nil, http.MethodPost, "/run", runBody(11))
	if legacy.Code != http.StatusOK {
		t.Fatalf("legacy /run: status %d: %s", legacy.Code, legacy.Body.String())
	}
	if legacy.Header().Get(api.HeaderDeprecation) != "true" {
		t.Error("legacy /run lacks the Deprecation header")
	}
	if link := legacy.Header().Get("Link"); !strings.Contains(link, api.PathRun) {
		t.Errorf("legacy /run Link header %q does not name the successor %s", link, api.PathRun)
	}
	v1 := doReq(h, nil, http.MethodPost, api.PathRun, runBody(11))
	if v1.Code != http.StatusOK {
		t.Fatalf("%s: status %d", api.PathRun, v1.Code)
	}
	if v1.Header().Get(api.HeaderDeprecation) != "" {
		t.Error("/v1/run carries a Deprecation header")
	}
	if !bytes.Equal(legacy.Body.Bytes(), v1.Body.Bytes()) {
		t.Error("legacy and /v1 bodies differ")
	}
	for _, p := range []string{api.LegacyPathHealthz, api.LegacyPathStatsz, api.LegacyPathWorkloads} {
		if got := doReq(h, nil, http.MethodGet, p, "").Header().Get(api.HeaderDeprecation); got != "true" {
			t.Errorf("%s: Deprecation header = %q, want true", p, got)
		}
	}
	var resp RunResponse
	if err := json.Unmarshal(v1.Body.Bytes(), &resp); err != nil || resp.Version != api.Version {
		t.Errorf("response version = %q (err %v), want %q", resp.Version, err, api.Version)
	}
}

func TestStatszAndWorkloads(t *testing.T) {
	s := New(Config{Jobs: 2, QueueDepth: 4, CacheEntries: 4})
	h := s.Handler()
	if rr := doReq(h, nil, http.MethodPost, "/run", runBody(5)); rr.Code != http.StatusOK {
		t.Fatalf("run: status %d: %s", rr.Code, rr.Body.String())
	}

	var st Statsz
	if err := json.Unmarshal(doReq(h, nil, http.MethodGet, "/statsz", "").Body.Bytes(), &st); err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if st.Cache.Misses != 1 || st.Cache.Entries != 1 || st.Cache.Capacity != 4 {
		t.Errorf("statsz cache = %+v, want 1 miss, 1 entry, capacity 4", st.Cache)
	}
	if st.Queue.Jobs != 2 || st.Queue.Depth != 4 {
		t.Errorf("statsz queue = %+v", st.Queue)
	}
	found := false
	for _, w := range st.Workloads {
		if w.Workload == "serve_tiny" && w.Runs == 1 && w.Errors == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("statsz missing serve_tiny latency row: %+v", st.Workloads)
	}
	if len(st.Counters) == 0 {
		t.Error("statsz carries no obs counters")
	}

	wl := doReq(h, nil, http.MethodGet, "/workloads", "").Body.String()
	for _, name := range []string{"serve_tiny", "serve_slow"} {
		if !strings.Contains(wl, name) {
			t.Errorf("/workloads missing %s: %s", name, wl)
		}
	}

	if rr := doReq(h, nil, http.MethodGet, "/healthz", ""); rr.Code != http.StatusOK {
		t.Errorf("/healthz: status %d", rr.Code)
	}
}

// TestResponseShape decodes one response and sanity-checks the fields
// the quickstart documents.
func TestResponseShape(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	rr := doReq(h, nil, http.MethodPost, "/run", `{"workload":"serve_tiny","seed":2,"monitoring":true,"interval":1000}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Workload != "serve_tiny" || resp.Seed != 2 {
		t.Errorf("echo fields wrong: %+v", resp)
	}
	if resp.Cycles == 0 || resp.Instret == 0 || resp.CPI <= 0 {
		t.Errorf("timing fields empty: cycles %d instret %d cpi %f", resp.Cycles, resp.Instret, resp.CPI)
	}
	if len(resp.Results) != 1 || resp.Results[0] != 50_000*49_999/2 {
		t.Errorf("results = %v", resp.Results)
	}
	if resp.Monitor == nil {
		t.Error("monitoring requested but monitor stats absent")
	}
	if resp.Key != rr.Header().Get("X-Hpmvmd-Key") {
		t.Error("body key differs from X-Hpmvmd-Key header")
	}
}
