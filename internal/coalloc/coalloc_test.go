package coalloc_test

import (
	"strings"
	"testing"

	"hpmvm/internal/bench"
	"hpmvm/internal/coalloc"
	"hpmvm/internal/core"
	"hpmvm/internal/vm/bytecode"
	"hpmvm/internal/vm/classfile"
)

const (
	kInt  = classfile.KindInt
	kRef  = classfile.KindRef
	kVoid = classfile.KindVoid
)

// hotPairProgram keeps an array of Node objects whose payload arrays
// are re-read in strided sweeps (missy), with steady node turnover so
// fresh pairs keep being promoted.
func hotPairProgram(u *classfile.Universe) (*classfile.Method, *classfile.Field) {
	node := u.DefineClass("Node", nil)
	fpay := u.AddField(node, "payload", kRef)
	cl := u.DefineClass("Main", nil)
	main := u.AddMethod(cl, "main", false, nil, kVoid)
	b := bytecode.NewBuilder(u, main)
	b.Local("nodes", kRef)
	b.Local("i", kInt)
	b.Local("round", kInt)
	b.Local("n", kRef)
	b.Local("sum", kInt)
	b.Const(5000).NewArray(u.RefArray).Store("nodes")
	b.Label("mk")
	b.Load("i").Const(5000).If(bytecode.OpIfGE, "run")
	b.New(node).Store("n")
	b.Load("n").Const(10).NewArray(u.IntArray).PutField(fpay)
	b.Load("nodes").Load("i").Load("n").AStore(kRef)
	b.Inc("i", 1)
	b.Goto("mk")
	b.Label("run")
	b.Const(0).Store("round")
	b.Label("rounds")
	b.Load("round").Const(500).If(bytecode.OpIfGE, "done")
	// Sweep: chase node -> payload[0].
	b.Const(0).Store("i")
	b.Label("sweep")
	b.Load("i").Const(5000).If(bytecode.OpIfGE, "mutate")
	b.Load("sum").
		Load("nodes").Load("i").ALoad(kRef).GetField(fpay).Const(0).ALoad(kInt).
		Add().Store("sum")
	b.Inc("i", 7)
	b.Goto("sweep")
	b.Label("mutate")
	// Replace 200 nodes per round (turnover: promotions happen all run).
	b.Const(0).Store("i")
	b.Label("rep")
	b.Load("i").Const(200).If(bytecode.OpIfGE, "rnext")
	b.New(node).Store("n")
	b.Load("n").Const(10).NewArray(u.IntArray).PutField(fpay)
	b.Load("nodes").Load("round").Const(97).Mul().Load("i").Add().Const(5000).Rem().Load("n").AStore(kRef)
	b.Inc("i", 1)
	b.Goto("rep")
	b.Label("rnext")
	b.Inc("round", 1)
	b.Goto("rounds")
	b.Label("done")
	b.Load("sum").Result()
	b.Return()
	b.MustBuild()
	return main, fpay
}

func runPolicy(t *testing.T, opts core.Options) *core.System {
	t.Helper()
	u := classfile.NewUniverse()
	main, _ := hotPairProgram(u)
	u.Layout()
	sys := core.NewSystem(u, opts)
	if err := sys.Boot(bench.AllOptPlan(u, 2), nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(main, 0); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPolicyActivatesHotField(t *testing.T) {
	sys := runPolicy(t, core.Options{
		HeapLimit:        8 << 20,
		Monitoring:       true,
		SamplingInterval: 2000,
		Coalloc:          true,
	})
	if sys.CoallocPairs() == 0 {
		t.Fatalf("no pairs placed; events: %v", sys.Policy.Events())
	}
	var active bool
	for _, d := range sys.Policy.Decisions() {
		if d.Field.QualifiedName() == "Node::payload" && d.Mode == "active" {
			active = true
			if d.Gap != 0 {
				t.Error("default placement should be adjacent")
			}
		}
	}
	if !active {
		t.Fatalf("Node::payload not active; decisions: %+v", sys.Policy.Decisions())
	}
	// Co-allocation must reduce misses against the plain run.
	base := runPolicy(t, core.Options{HeapLimit: 8 << 20})
	if sys.Hier().Stats().L1Misses >= base.Hier().Stats().L1Misses {
		t.Errorf("no miss reduction: %d vs %d",
			sys.Hier().Stats().L1Misses, base.Hier().Stats().L1Misses)
	}
}

func TestPolicyRevertsForcedGap(t *testing.T) {
	u := classfile.NewUniverse()
	main, _ := hotPairProgram(u)
	u.Layout()
	// Measure run length first so the intervention lands mid-run.
	sys0 := core.NewSystem(u, core.Options{HeapLimit: 8 << 20})
	if err := sys0.Boot(bench.AllOptPlan(u, 2), nil); err != nil {
		t.Fatal(err)
	}
	if err := sys0.Run(main, 0); err != nil {
		t.Fatal(err)
	}
	mid := sys0.VM.Cycles() / 2

	u2 := classfile.NewUniverse()
	main2, _ := hotPairProgram(u2)
	u2.Layout()
	cc := coalloc.DefaultConfig()
	cc.GapAtCycle = mid
	sys := core.NewSystem(u2, core.Options{
		HeapLimit:        8 << 20,
		Monitoring:       true,
		SamplingInterval: 800,
		Coalloc:          true,
		CoallocConfig:    &cc,
	})
	if err := sys.Boot(bench.AllOptPlan(u2, 2), nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(main2, 0); err != nil {
		t.Fatal(err)
	}
	var intervened, reverted bool
	for _, e := range sys.Policy.Events() {
		if strings.Contains(e, "manual intervention") {
			intervened = true
		}
		if strings.Contains(e, "revert") {
			reverted = true
		}
	}
	if !intervened {
		t.Fatalf("intervention never fired; events: %v", sys.Policy.Events())
	}
	if !reverted {
		t.Fatalf("poor placement not reverted; events: %v", sys.Policy.Events())
	}
	// After the revert the hot field must be back on adjacent placement.
	for _, d := range sys.Policy.Decisions() {
		if d.Field.QualifiedName() == "Node::payload" {
			if d.Mode != "active" || d.Gap != 0 {
				t.Errorf("post-revert state: %+v", d)
			}
			if d.Reverts == 0 {
				t.Error("revert counter zero")
			}
		}
	}
}
