package coalloc

import (
	"hpmvm/internal/monitor"
	"hpmvm/internal/obs"
	"hpmvm/internal/opt"
)

// This file ports the policy onto the generic online-optimization
// framework: Policy implements opt.Optimization so the opt.Manager can
// drive it instead of a privately registered monitor observer.
//
// Byte-identity contract: driven by the manager, the policy must make
// exactly the decisions observe() makes, in the same order, with the
// same log lines and obs events — the golden corpus pins this. The
// port splits observe()'s three phases onto the interface:
//
//   - Analyze replicates the activation scan and the Figure 8
//     intervention scan without enacting them. Decisions that
//     observe() would take in one pass over mutating state are
//     precomputed against an overlay (the per-class hottest-field
//     table updated by earlier activations in the same poll), so
//     deferring the mutation to Apply cannot change any outcome.
//   - Apply performs the exact mutations observe() performed inline.
//   - OpenDecisions/Assess/Revert reproduce the revert loop: every
//     active field in field-ID order, A/B comparison first (a revert
//     ends that field's assessment for the poll), then the rate-based
//     fallback.
//
// Analyze still creates idle fieldState entries for sampled fields:
// observe() did, and those entries are part of the snapshot format.
var _ opt.Optimization = (*Policy)(nil)

// NewPolicy builds a policy for the opt.Manager to drive: identical to
// New, except no monitor observer is registered (the manager observes
// the monitor and calls the Optimization methods itself).
func NewPolicy(mon *monitor.Monitor, cfg Config) *Policy {
	if cfg.GapBytes == 0 {
		cfg.GapBytes = 128
	}
	return &Policy{
		cfg:     cfg,
		mon:     mon,
		byClass: make(map[int]*fieldState),
		fields:  make(map[int]*fieldState),
	}
}

// Kind implements opt.Optimization.
func (p *Policy) Kind() string { return opt.KindCoalloc }

// MonitorWindow implements opt.Optimization. The policy assesses on
// every poll: its A/B comparison gates itself on attributed sample
// counts rather than elapsed polls, exactly as observe() did.
func (p *Policy) MonitorWindow() uint64 { return 0 }

// activation carries one pending activation from Analyze to Apply.
type activation struct {
	st  *fieldState
	fc  *monitor.FieldCounter
	top bool
}

// intervention carries one pending Figure 8 intervention.
type intervention struct {
	st *fieldState
}

// Analyze implements opt.Optimization: the activation scan and the
// intervention scan of observe(), computed without side effects beyond
// fieldState bookkeeping entries.
func (p *Policy) Analyze(now uint64) []opt.Proposal {
	var out []opt.Proposal
	// Overlay of byClass assignments made by activations proposed this
	// poll: observe() updated p.byClass mid-scan, so a later field of
	// the same class compared against the earlier activation's misses.
	var overlay map[int]*fieldState
	pending := map[int]bool{}
	for _, fc := range p.mon.HotFields() {
		f := fc.Field
		st := p.fields[f.ID]
		if st == nil {
			st = &fieldState{field: f}
			p.fields[f.ID] = st
		}
		if st.mode == modeIdle && fc.Samples >= p.cfg.MinSamples {
			cur := p.byClass[f.Class.ID]
			if overlay != nil && overlay[f.Class.ID] != nil {
				cur = overlay[f.Class.ID]
			}
			top := cur == nil || p.mon.FieldMisses(f) > p.mon.FieldMisses(cur.field)
			if top || p.cfg.Ranked {
				if top {
					if overlay == nil {
						overlay = make(map[int]*fieldState)
					}
					overlay[f.Class.ID] = st
				}
				pending[f.ID] = true
				out = append(out, opt.Proposal{
					Target: f.ID,
					Label:  f.QualifiedName(),
					Code:   obs.DecisionActivate,
					State:  &activation{st: st, fc: fc, top: top},
				})
			}
		}
	}

	// Figure 8 intervention scan. observe() ran it after the activation
	// phase, so fields activated this poll are eligible too when the
	// configured activation gap is zero.
	if p.cfg.GapAtCycle > 0 && !p.intervened && now >= p.cfg.GapAtCycle {
		for _, st := range p.sortedFields() {
			eligible := st.mode == modeActive && st.gap == 0
			if !eligible && pending[st.field.ID] && p.cfg.Gap == 0 {
				eligible = true
			}
			if eligible {
				out = append(out, opt.Proposal{
					Target: st.field.ID,
					Label:  st.field.QualifiedName(),
					Code:   obs.DecisionIntervene,
					State:  &intervention{st: st},
				})
			}
		}
	}
	return out
}

// Apply implements opt.Optimization: the mutations observe() performed
// inline for an activation or intervention, verbatim.
func (p *Policy) Apply(now uint64, pr opt.Proposal) {
	switch a := pr.State.(type) {
	case *activation:
		st, fc := a.st, a.fc
		st.mode = modeActive
		st.gap = p.cfg.Gap
		st.baselineRate = tailMean(&fc.RateSeries, p.cfg.EvalPeriods)
		st.activatedAt = fc.RateSeries.Len()
		if a.top {
			p.byClass[st.field.Class.ID] = st
		}
		p.logf(now, "activate %s (gap %d, baseline rate %.0f misses/Mcycle)",
			st.field.QualifiedName(), st.gap, st.baselineRate)
		p.decided(now, st.field, st.gap, obs.DecisionActivate)
	case *intervention:
		st := a.st
		p.intervened = true
		st.gap = p.cfg.GapBytes
		if fc := p.mon.Field(st.field); fc != nil {
			st.baselineRate = tailMean(&fc.RateSeries, p.cfg.EvalPeriods)
			st.activatedAt = fc.RateSeries.Len()
			st.abMarkAdj = fc.AdjacentSamples
			st.abMarkGap = fc.GappedSamples
		}
		p.logf(now, "manual intervention: %d-byte gap forced for %s",
			st.gap, st.field.QualifiedName())
		p.decided(now, st.field, st.gap, obs.DecisionIntervene)
	}
}

// OpenDecisions implements opt.Optimization: every active field in
// field-ID order — the exact iteration of observe()'s revert loop
// (inactive states are skipped there too).
func (p *Policy) OpenDecisions() []*opt.Decision {
	var out []*opt.Decision
	for _, st := range p.sortedFields() {
		if st.mode != modeActive {
			continue
		}
		out = append(out, &opt.Decision{
			Target: st.field.ID,
			Label:  st.field.QualifiedName(),
			State:  st,
		})
	}
	return out
}

// Assess implements opt.Optimization: the per-field judgment of
// observe()'s revert loop. A bad A/B verdict suppresses the rate
// fallback for that field this poll, matching observe()'s continue.
func (p *Policy) Assess(now uint64, d *opt.Decision) opt.Assessment {
	keep := opt.Assessment{Verdict: opt.VerdictKeep}
	if !p.cfg.RevertEnabled {
		return keep
	}
	st := d.State.(*fieldState)
	fc := p.mon.Field(st.field)
	if fc == nil {
		return keep
	}
	dAdj := fc.AdjacentSamples - st.abMarkAdj
	dGap := fc.GappedSamples - st.abMarkGap
	if st.gap > 0 && st.pairsAdj > 0 && st.pairsGapped > 0 &&
		dAdj+dGap >= p.cfg.MinABSamples {
		perAdj := (float64(dAdj) + 0.5) / float64(st.pairsAdj)
		perGap := float64(dGap) / float64(st.pairsGapped)
		if perGap > perAdj*p.cfg.ABRatio {
			return opt.Assessment{
				Verdict: opt.VerdictBad,
				Reason:  obs.DecisionRevertAB,
				A:       perGap,
				B:       perAdj,
			}
		}
	}
	if st.gap == 0 || st.pairsGapped == 0 {
		return keep
	}
	elapsed := fc.RateSeries.Len() - st.activatedAt
	if elapsed < p.cfg.EvalPeriods {
		return keep
	}
	current := tailMean(&fc.RateSeries, p.cfg.EvalPeriods)
	if st.baselineRate > 0 && current > st.baselineRate*p.cfg.RegressionFactor {
		return opt.Assessment{
			Verdict: opt.VerdictBad,
			Reason:  obs.DecisionRevertRate,
			A:       current,
			B:       st.baselineRate,
		}
	}
	return keep
}

// Revert implements opt.Optimization: the revert mutations of
// observe(), selected by the assessment's reason code.
func (p *Policy) Revert(now uint64, d *opt.Decision, a opt.Assessment) {
	st := d.State.(*fieldState)
	fc := p.mon.Field(st.field)
	switch a.Reason {
	case obs.DecisionRevertAB:
		st.gap = 0
		st.reverts++
		st.abMarkAdj = fc.AdjacentSamples
		st.abMarkGap = fc.GappedSamples
		p.logf(now, "revert %s: gapped pairs draw %.4f sampled misses/pair vs %.4f for adjacent — switching back to adjacent placement",
			st.field.QualifiedName(), a.A, a.B)
		p.decided(now, st.field, 0, obs.DecisionRevertAB)
	case obs.DecisionRevertRate:
		st.reverts++
		st.gap = 0
		p.logf(now, "revert %s: rate %.0f vs baseline %.0f misses/Mcycle — dropping gap",
			st.field.QualifiedName(), a.A, a.B)
		p.decided(now, st.field, 0, obs.DecisionRevertRate)
		st.baselineRate = a.A
		st.activatedAt = fc.RateSeries.Len()
	}
}

// Stats implements opt.Optimization. Both counters are derived from
// serialized policy state, so restored systems report them exactly:
// decisions are the fields ever activated (mode is never reset to
// idle) plus one for a fired Figure 8 intervention; reverts sum the
// per-field revert counters.
func (p *Policy) Stats() opt.Stats {
	var s opt.Stats
	for _, st := range p.fields {
		if st.mode != modeIdle {
			s.Decisions++
		}
		s.Reverts += uint64(st.reverts)
	}
	if p.intervened {
		s.Decisions++
	}
	return s
}
