// Package coalloc implements the HPM-guided co-allocation policy of
// §5: it ranks each class's reference fields by the cache misses the
// monitor attributes to them, advises the GenMS collector which child
// object to co-allocate with a promoted parent, and runs the online
// effectiveness assessment of §5.3/Figure 8.
//
// The assessment exploits the precise association of miss events with
// object placements ("the precise association of the miss events with
// object types and references allows the VM to assess the effect of
// individual optimization decisions"): every sampled miss whose data
// address falls inside a co-allocated cell is attributed to that
// cell's placement variant (adjacent vs gapped), and the policy
// A/B-compares misses per pair between variants — a signal that is
// robust against program phase changes, unlike a raw before/after rate
// comparison. A rate-based fallback covers the case where only one
// variant exists.
package coalloc

import (
	"fmt"
	"sort"

	"hpmvm/internal/gc/genms"
	"hpmvm/internal/monitor"
	"hpmvm/internal/obs"
	"hpmvm/internal/stats"
	"hpmvm/internal/vm/classfile"
)

// Config tunes the policy.
type Config struct {
	// MinSamples is the number of attributed samples a field needs
	// before it is considered hot enough to drive co-allocation (a
	// statistically meaningless single sample must not retune the GC).
	MinSamples uint64

	// Gap is the placement gap applied from activation on (normally 0;
	// non-zero reproduces ablations where every pair is gapped).
	Gap uint64

	// GapAtCycle, when non-zero, is the Figure 8 manual intervention:
	// once the cycle counter passes it, newly placed pairs of active
	// fields get one cache line (GapBytes) of padding — "we then
	// instructed the GC manually to place one cache line of empty
	// space between the String and the char[] objects".
	GapAtCycle uint64
	// GapBytes is the padding used by the intervention (default 128).
	GapBytes uint64

	// Revert heuristic. With both placement variants observed, the
	// policy reverts the gapped placement when gapped pairs attract
	// more than ABRatio times the misses-per-pair of adjacent pairs
	// (after MinABSamples variant-attributed samples). Without an A/B
	// population, it falls back to comparing the field's miss rate
	// against the rate at activation and reverts on a regression
	// beyond RegressionFactor.
	ABRatio          float64
	MinABSamples     uint64
	EvalPeriods      int
	RegressionFactor float64

	// RevertEnabled turns the online assessment on.
	RevertEnabled bool

	// Ranked enables the full §5.4 per-class candidate list: every
	// sufficiently sampled reference field becomes a candidate, and
	// the collector falls back from the hottest field to the next when
	// a child is ineligible (already promoted, too large, ...). Off by
	// default: the plain policy co-allocates only through the single
	// hottest field per class, which is what the reported experiments
	// use.
	Ranked bool
}

// DefaultConfig returns the standard policy settings.
func DefaultConfig() Config {
	return Config{
		MinSamples:       8,
		Gap:              0,
		GapBytes:         128,
		ABRatio:          1.4,
		MinABSamples:     12,
		EvalPeriods:      6,
		RegressionFactor: 2.5,
		RevertEnabled:    true,
	}
}

// fieldMode is the per-field placement state machine.
type fieldMode int

const (
	modeIdle     fieldMode = iota // not yet hot
	modeActive                    // co-allocating
	modeDisabled                  // reverted entirely
)

func (m fieldMode) String() string {
	switch m {
	case modeIdle:
		return "idle"
	case modeActive:
		return "active"
	case modeDisabled:
		return "disabled"
	default:
		return "?"
	}
}

// fieldState tracks one reference field's decision history.
type fieldState struct {
	field *classfile.Field
	mode  fieldMode
	gap   uint64 // current placement gap for new pairs

	baselineRate float64
	activatedAt  int
	pairsAdj     uint64
	pairsGapped  uint64
	reverts      int
	// A/B sample marks: variant-attributed sample counts at the last
	// placement change, so assessments use deltas that compare the
	// same observation window.
	abMarkAdj uint64
	abMarkGap uint64
}

// Policy implements genms.Advisor over monitor feedback.
type Policy struct {
	cfg Config
	mon *monitor.Monitor

	byClass map[int]*fieldState
	fields  map[int]*fieldState

	intervened bool
	events     []string

	// obs, when non-nil, receives an EvCoallocDecision event per
	// activation, revert and intervention (nil-gated).
	obs *obs.Observer
}

// New builds a policy and registers it as a monitor observer so its
// state machine advances after every collector-thread poll.
func New(mon *monitor.Monitor, cfg Config) *Policy {
	if cfg.GapBytes == 0 {
		cfg.GapBytes = 128
	}
	p := &Policy{
		cfg:     cfg,
		mon:     mon,
		byClass: make(map[int]*fieldState),
		fields:  make(map[int]*fieldState),
	}
	mon.AddObserver(p.observe)
	return p
}

// SetObserver attaches the observability layer: decision counts are
// registered and every placement decision is traced. Passing nil
// detaches.
func (p *Policy) SetObserver(o *obs.Observer) {
	p.obs = o
	if o == nil {
		return
	}
	o.RegisterSampled("coalloc.active_fields", func() uint64 {
		var n uint64
		for _, st := range p.fields {
			if st.mode == modeActive {
				n++
			}
		}
		return n
	})
	o.RegisterSampled("coalloc.reverts", func() uint64 {
		var n uint64
		for _, st := range p.fields {
			n += uint64(st.reverts)
		}
		return n
	})
}

// decided traces one policy decision (no-op without an observer).
func (p *Policy) decided(now uint64, f *classfile.Field, gap, code uint64) {
	if p.obs != nil {
		p.obs.Emit(obs.EvCoallocDecision, now, uint64(f.ID), gap, code)
	}
}

// HottestField implements genms.Advisor. Field states are registered
// under the declaring class; instances of subclasses inherit the
// decision.
func (p *Policy) HottestField(cl *classfile.Class) (*classfile.Field, uint64) {
	var st *fieldState
	for c := cl; c != nil; c = c.Super {
		if s := p.byClass[c.ID]; s != nil {
			st = s
			break
		}
	}
	if st == nil || st.mode != modeActive {
		return nil, 0
	}
	return st.field, st.gap
}

// RankedFields implements genms.RankedAdvisor: the per-class candidate
// list of §5.4, hottest first. With Config.Ranked off it degenerates
// to the single hottest field, preserving the plain policy's behavior.
func (p *Policy) RankedFields(cl *classfile.Class) []genms.RankedField {
	if !p.cfg.Ranked {
		if f, gap := p.HottestField(cl); f != nil {
			return []genms.RankedField{{Field: f, Gap: gap}}
		}
		return nil
	}
	var states []*fieldState
	for _, st := range p.fields {
		if st.mode != modeActive {
			continue
		}
		for c := cl; c != nil; c = c.Super {
			if st.field.Class == c {
				states = append(states, st)
				break
			}
		}
	}
	sort.Slice(states, func(i, j int) bool {
		mi, mj := p.mon.FieldMisses(states[i].field), p.mon.FieldMisses(states[j].field)
		if mi != mj {
			return mi > mj
		}
		return states[i].field.ID < states[j].field.ID
	})
	out := make([]genms.RankedField, len(states))
	for i, st := range states {
		out[i] = genms.RankedField{Field: st.field, Gap: st.gap}
	}
	return out
}

// CoallocationPerformed implements genms.Advisor.
func (p *Policy) CoallocationPerformed(f *classfile.Field, gap uint64) {
	if st := p.fields[f.ID]; st != nil {
		if gap > 0 {
			st.pairsGapped++
		} else {
			st.pairsAdj++
		}
	}
}

// sortedFields returns the field states in field-ID order. The state
// machine below logs (and in the intervention case, mutates) as it
// walks the states, so walking the map directly would leak map
// iteration order into the event log.
func (p *Policy) sortedFields() []*fieldState {
	out := make([]*fieldState, 0, len(p.fields))
	for _, st := range p.fields {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].field.ID < out[j].field.ID })
	return out
}

// observe advances the policy after each monitor poll.
func (p *Policy) observe(now uint64) {
	// Activate newly hot fields.
	for _, fc := range p.mon.HotFields() {
		f := fc.Field
		st := p.fields[f.ID]
		if st == nil {
			st = &fieldState{field: f}
			p.fields[f.ID] = st
		}
		if st.mode == modeIdle && fc.Samples >= p.cfg.MinSamples {
			cur := p.byClass[f.Class.ID]
			top := cur == nil || p.mon.FieldMisses(f) > p.mon.FieldMisses(cur.field)
			if top || p.cfg.Ranked {
				st.mode = modeActive
				st.gap = p.cfg.Gap
				st.baselineRate = tailMean(&fc.RateSeries, p.cfg.EvalPeriods)
				st.activatedAt = fc.RateSeries.Len()
				if top {
					p.byClass[f.Class.ID] = st
				}
				p.logf(now, "activate %s (gap %d, baseline rate %.0f misses/Mcycle)",
					f.QualifiedName(), st.gap, st.baselineRate)
				p.decided(now, f, st.gap, obs.DecisionActivate)
			}
		}
	}

	// Figure 8 manual intervention: force the pathological gap. The
	// intervention stays pending until at least one active placement
	// exists to apply it to.
	if p.cfg.GapAtCycle > 0 && !p.intervened && now >= p.cfg.GapAtCycle {
		for _, st := range p.sortedFields() {
			if st.mode == modeActive && st.gap == 0 {
				p.intervened = true
				st.gap = p.cfg.GapBytes
				if fc := p.mon.Field(st.field); fc != nil {
					st.baselineRate = tailMean(&fc.RateSeries, p.cfg.EvalPeriods)
					st.activatedAt = fc.RateSeries.Len()
					st.abMarkAdj = fc.AdjacentSamples
					st.abMarkGap = fc.GappedSamples
				}
				p.logf(now, "manual intervention: %d-byte gap forced for %s",
					st.gap, st.field.QualifiedName())
				p.decided(now, st.field, st.gap, obs.DecisionIntervene)
			}
		}
	}

	if !p.cfg.RevertEnabled {
		return
	}
	for _, st := range p.sortedFields() {
		if st.mode != modeActive {
			continue
		}
		fc := p.mon.Field(st.field)
		if fc == nil {
			continue
		}
		// A/B assessment between placement variants, over the window
		// since the last placement change.
		dAdj := fc.AdjacentSamples - st.abMarkAdj
		dGap := fc.GappedSamples - st.abMarkGap
		if st.gap > 0 && st.pairsAdj > 0 && st.pairsGapped > 0 &&
			dAdj+dGap >= p.cfg.MinABSamples {
			// Laplace smoothing: a well-placed pair population often
			// produces zero samples (its child accesses hit — that is
			// the point of co-allocation), and an absent denominator
			// must not mask the signal.
			perAdj := (float64(dAdj) + 0.5) / float64(st.pairsAdj)
			perGap := float64(dGap) / float64(st.pairsGapped)
			if perGap > perAdj*p.cfg.ABRatio {
				st.gap = 0
				st.reverts++
				st.abMarkAdj = fc.AdjacentSamples
				st.abMarkGap = fc.GappedSamples
				p.logf(now, "revert %s: gapped pairs draw %.4f sampled misses/pair vs %.4f for adjacent — switching back to adjacent placement",
					st.field.QualifiedName(), perGap, perAdj)
				p.decided(now, st.field, 0, obs.DecisionRevertAB)
				continue
			}
		}
		// Rate-based fallback for gapped placements whose A/B
		// comparison has no adjacent population (gap configured from
		// the start): a gross rate regression drops the gap. Adjacent
		// placements are never reverted on rate alone — a raw
		// before/after rate comparison cannot distinguish a bad
		// placement from a program phase change, and the paper reports
		// no case where undoing a plain co-allocation was needed.
		if st.gap == 0 || st.pairsGapped == 0 {
			continue
		}
		elapsed := fc.RateSeries.Len() - st.activatedAt
		if elapsed < p.cfg.EvalPeriods {
			continue
		}
		current := tailMean(&fc.RateSeries, p.cfg.EvalPeriods)
		if st.baselineRate > 0 && current > st.baselineRate*p.cfg.RegressionFactor {
			st.reverts++
			st.gap = 0
			p.logf(now, "revert %s: rate %.0f vs baseline %.0f misses/Mcycle — dropping gap",
				st.field.QualifiedName(), current, st.baselineRate)
			p.decided(now, st.field, 0, obs.DecisionRevertRate)
			st.baselineRate = current
			st.activatedAt = fc.RateSeries.Len()
		}
	}
}

// tailMean averages the last n values of a series (its recent rate).
func tailMean(s *stats.Series, n int) float64 {
	vals := s.Values()
	if len(vals) == 0 {
		return 0
	}
	if len(vals) > n {
		vals = vals[len(vals)-n:]
	}
	return stats.Mean(vals)
}

func (p *Policy) logf(now uint64, format string, args ...any) {
	p.events = append(p.events, fmt.Sprintf("[cycle %d] %s", now, fmt.Sprintf(format, args...)))
}

// Events returns the decision log.
func (p *Policy) Events() []string { return p.events }

// Decision describes a field's current placement state.
type Decision struct {
	Field   *classfile.Field
	Mode    string
	Gap     uint64
	Pairs   uint64
	Reverts int
}

// Decisions lists the per-field states in field order.
func (p *Policy) Decisions() []Decision {
	var out []Decision
	for _, st := range p.fields {
		out = append(out, Decision{
			Field: st.field, Mode: st.mode.String(), Gap: st.gap,
			Pairs: st.pairsAdj + st.pairsGapped, Reverts: st.reverts,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Field.ID < out[j].Field.ID })
	return out
}
