package coalloc

import (
	"fmt"
	"sort"

	"hpmvm/internal/snap"
)

// Snapshot/Restore implement snap.Checkpointable for the co-allocation
// policy: the per-field placement state machines, the class->state
// index (serialized as class ID -> field ID so restored entries share
// the same *fieldState as the fields table), the intervention latch and
// the decision log.

const (
	snapComponent = "coalloc"
	snapVersion   = 1
)

// Snapshot serializes the policy's mutable state.
func (p *Policy) Snapshot() snap.ComponentState {
	var w snap.Writer
	fieldIDs := make([]int, 0, len(p.fields))
	for id := range p.fields {
		fieldIDs = append(fieldIDs, id)
	}
	sort.Ints(fieldIDs)
	w.U64(uint64(len(fieldIDs)))
	for _, id := range fieldIDs {
		st := p.fields[id]
		w.I64(int64(id))
		w.I64(int64(st.mode))
		w.U64(st.gap)
		w.F64(st.baselineRate)
		w.I64(int64(st.activatedAt))
		w.U64(st.pairsAdj)
		w.U64(st.pairsGapped)
		w.I64(int64(st.reverts))
		w.U64(st.abMarkAdj)
		w.U64(st.abMarkGap)
	}
	classIDs := make([]int, 0, len(p.byClass))
	for id := range p.byClass {
		classIDs = append(classIDs, id)
	}
	sort.Ints(classIDs)
	w.U64(uint64(len(classIDs)))
	for _, id := range classIDs {
		w.I64(int64(id))
		w.I64(int64(p.byClass[id].field.ID))
	}
	w.Bool(p.intervened)
	w.U64(uint64(len(p.events)))
	for _, e := range p.events {
		w.String(e)
	}
	return snap.ComponentState{Component: snapComponent, Version: snapVersion, Data: w.Bytes()}
}

// Restore overwrites the policy's mutable state. Field IDs are
// re-resolved through the monitor's universe; byClass entries are
// re-pointed at the restored fieldState objects so the pointer sharing
// of the live structure is preserved.
func (p *Policy) Restore(st snap.ComponentState) error {
	if err := snap.Check(st, snapComponent, snapVersion); err != nil {
		return err
	}
	u := p.mon.Universe()
	r := snap.NewReader(st.Data)
	nFields := r.U64()
	fields := make(map[int]*fieldState, nFields)
	for i := uint64(0); i < nFields && r.Err() == nil; i++ {
		id := int(r.I64())
		fs := &fieldState{}
		fs.mode = fieldMode(r.I64())
		fs.gap = r.U64()
		fs.baselineRate = r.F64()
		fs.activatedAt = int(r.I64())
		fs.pairsAdj = r.U64()
		fs.pairsGapped = r.U64()
		fs.reverts = int(r.I64())
		fs.abMarkAdj = r.U64()
		fs.abMarkGap = r.U64()
		if r.Err() != nil {
			break
		}
		if id < 0 || id >= len(u.Fields()) {
			return fmt.Errorf("coalloc: %w: field id %d not in universe", snap.ErrDecode, id)
		}
		fs.field = u.Field(id)
		fields[id] = fs
	}
	nClasses := r.U64()
	type classEntry struct{ classID, fieldID int }
	classEntries := make([]classEntry, 0, nClasses)
	for i := uint64(0); i < nClasses && r.Err() == nil; i++ {
		ce := classEntry{classID: int(r.I64()), fieldID: int(r.I64())}
		classEntries = append(classEntries, ce)
	}
	intervened := r.Bool()
	nEvents := r.U64()
	events := make([]string, 0, nEvents)
	for i := uint64(0); i < nEvents && r.Err() == nil; i++ {
		events = append(events, r.String())
	}
	if err := r.Close(); err != nil {
		return err
	}
	byClass := make(map[int]*fieldState, len(classEntries))
	for _, ce := range classEntries {
		fs := fields[ce.fieldID]
		if fs == nil {
			return fmt.Errorf("coalloc: %w: class %d references unknown field state %d",
				snap.ErrDecode, ce.classID, ce.fieldID)
		}
		byClass[ce.classID] = fs
	}
	p.fields = fields
	p.byClass = byClass
	p.intervened = intervened
	p.events = events
	return nil
}
