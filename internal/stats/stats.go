// Package stats provides small statistical helpers used by the
// monitoring infrastructure and the benchmark harness: means, standard
// deviations, moving averages, and time series of sampled metrics.
//
// The paper reports averages over 3 executions with standard deviations
// (§6.1) and plots moving averages over the last 3 measurement periods
// (Figure 7b); this package implements exactly those primitives.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator).
// It returns 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// skipped; it returns 0 if no positive entries remain.
func GeoMean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// MovingAverage computes the trailing moving average of xs over the
// given window. Entry i averages xs[max(0,i-window+1)..i], so the
// result has the same length as xs. A window of 3 reproduces the
// "moving average over the last 3 periods" line from Figure 7b.
func MovingAverage(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

// Sample is one (time, value) observation of a metric.
type Sample struct {
	Time  uint64  // simulated cycle count at which the value was observed
	Value float64 // observed value
}

// Series is an append-only time series of metric observations, e.g.
// the per-period L1 miss counts the monitor records for a field.
type Series struct {
	Name    string
	Samples []Sample
}

// Add appends an observation.
func (s *Series) Add(t uint64, v float64) {
	s.Samples = append(s.Samples, Sample{Time: t, Value: v})
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Samples) }

// Values returns just the observed values, in order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.Value
	}
	return out
}

// Times returns just the observation times, in order.
func (s *Series) Times() []uint64 {
	out := make([]uint64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.Time
	}
	return out
}

// Cumulative returns a new series whose value at each point is the sum
// of all values up to and including that point (Figure 7a is the
// cumulative total count of cache misses).
func (s *Series) Cumulative() *Series {
	out := &Series{Name: s.Name + ".cumulative"}
	var sum float64
	for _, sm := range s.Samples {
		sum += sm.Value
		out.Add(sm.Time, sum)
	}
	return out
}

// Smoothed returns a new series holding the trailing moving average of
// the values over the given window, keeping the original times.
func (s *Series) Smoothed(window int) *Series {
	out := &Series{Name: fmt.Sprintf("%s.ma%d", s.Name, window)}
	vals := MovingAverage(s.Values(), window)
	for i, sm := range s.Samples {
		out.Add(sm.Time, vals[i])
	}
	return out
}

// Last returns the most recent value, or 0 if the series is empty.
func (s *Series) Last() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	return s.Samples[len(s.Samples)-1].Value
}

// Histogram is a fixed-bucket histogram over uint64 keys, used for
// size-class and sample-distribution diagnostics.
type Histogram struct {
	counts map[uint64]uint64
	total  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[uint64]uint64)}
}

// Observe increments the count for key.
func (h *Histogram) Observe(key uint64) {
	h.counts[key]++
	h.total++
}

// Count returns the number of observations for key.
func (h *Histogram) Count(key uint64) uint64 { return h.counts[key] }

// Total returns the total number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Keys returns all observed keys in ascending order.
func (h *Histogram) Keys() []uint64 {
	keys := make([]uint64, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
