package stats

import "math"

// Confidence-interval helpers. The benchmark harness reports means over
// 3 executions and the sampled-simulation estimator extrapolates from a
// few dozen measured regions; both are small-n settings where a normal
// approximation understates the interval, so the 95% intervals here use
// Student's t quantiles.

// tTable95 holds the two-sided 95% t quantiles for 1..30 degrees of
// freedom (t_{0.975,df}).
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TInv95 returns the two-sided 95% quantile of Student's t distribution
// with df degrees of freedom (exact table for df <= 30, then a few
// standard textbook rows, asymptoting to the normal 1.96). df < 1
// returns the df=1 value: a one-sample interval is unbounded in theory,
// but the callers below never ask (they emit a degenerate interval).
func TInv95(df int) float64 {
	switch {
	case df < 1:
		return tTable95[0]
	case df <= len(tTable95):
		return tTable95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// Interval is a mean with its two-sided 95% confidence interval. The
// JSON tags are part of the serve layer's sampled-response contract
// (it embeds Intervals via stats.Estimate).
type Interval struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"std_dev"` // sample standard deviation (n-1)
	Half   float64 `json:"half"`    // half-width of the 95% CI; 0 when N < 2
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	N      int     `json:"n"`
}

// MeanCI95 returns the mean of xs with a t-distribution 95% confidence
// interval. With fewer than two samples the interval is degenerate
// (Half 0, Lo == Hi == Mean): there is no spread to estimate from.
func MeanCI95(xs []float64) Interval {
	iv := Interval{Mean: Mean(xs), N: len(xs)}
	if len(xs) < 2 {
		iv.Lo, iv.Hi = iv.Mean, iv.Mean
		return iv
	}
	iv.StdDev = StdDev(xs)
	iv.Half = TInv95(len(xs)-1) * iv.StdDev / math.Sqrt(float64(len(xs)))
	iv.Lo = iv.Mean - iv.Half
	iv.Hi = iv.Mean + iv.Half
	return iv
}
