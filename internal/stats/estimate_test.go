package stats

import (
	"math"
	"testing"
)

// TestExtrapolateCyclesLoClamp is the regression test for the CI lower
// bound: two regions with wildly different CPIs produce a t-interval
// (df=1, t=12.7) far wider than the mean, which used to push CyclesLo
// below the exactly measured service cycles — below zero, even — an
// interval no run could realize. The bound must clamp at
// ServiceCycles.
func TestExtrapolateCyclesLoClamp(t *testing.T) {
	regions := []Region{
		{StartInstret: 0, Instret: 1000, Cycles: 1000},     // CPI 1
		{StartInstret: 50000, Instret: 1000, Cycles: 9000}, // CPI 9
	}
	const service = 500
	est := Extrapolate(regions, 1_000_000, service)
	// Sanity: the raw interval really is the pathological case — the
	// unclamped lower bound would be negative.
	if raw := est.Cycles - est.CPI.Half*float64(est.TotalInstret); raw >= float64(service) {
		t.Fatalf("fixture not pathological: unclamped lower bound %.0f >= service %d", raw, service)
	}
	if est.CyclesLo != float64(service) {
		t.Errorf("CyclesLo = %.0f, want clamp at service cycles %d", est.CyclesLo, service)
	}
	if est.CyclesLo > est.Cycles || est.CyclesHi < est.Cycles {
		t.Errorf("interval [%.0f, %.0f] does not bracket estimate %.0f", est.CyclesLo, est.CyclesHi, est.Cycles)
	}
}

// TestExtrapolateNoRegions pins the degenerate service-cycles-only
// estimate: a run whose schedule never produced a measured slice still
// reports its exactly counted service cycles, with a point interval.
func TestExtrapolateNoRegions(t *testing.T) {
	est := Extrapolate(nil, 123_456, 7890)
	if est.Regions != 0 || est.MeasuredInstret != 0 {
		t.Errorf("expected empty estimate, got %d regions / %d measured instret", est.Regions, est.MeasuredInstret)
	}
	if est.Cycles != 7890 || est.CyclesLo != 7890 || est.CyclesHi != 7890 {
		t.Errorf("service-only estimate = (%.0f, [%.0f, %.0f]), want all 7890",
			est.Cycles, est.CyclesLo, est.CyclesHi)
	}
	if est.CPI.N != 0 || est.CPI.Half != 0 {
		t.Errorf("no-region CPI interval should be zero-valued, got %+v", est.CPI)
	}
}

// TestExtrapolateSingleRegion pins the single-region degenerate
// interval (MeanCI95 with n < 2 has no spread to estimate from): the
// CI must collapse onto the point estimate, not blow up on df=0.
func TestExtrapolateSingleRegion(t *testing.T) {
	regions := []Region{{Instret: 2000, Cycles: 5000, Accesses: 600, L1Misses: 30}}
	est := Extrapolate(regions, 100_000, 0)
	if est.CPI.Half != 0 || est.CPI.N != 1 {
		t.Errorf("single-region CPI interval Half=%v N=%d, want degenerate Half=0 N=1", est.CPI.Half, est.CPI.N)
	}
	wantCycles := 2.5 * 100_000
	if math.Abs(est.Cycles-wantCycles) > 1e-9 {
		t.Errorf("Cycles = %.1f, want %.1f", est.Cycles, wantCycles)
	}
	if est.CyclesLo != est.Cycles || est.CyclesHi != est.Cycles {
		t.Errorf("single-region CI [%.1f, %.1f] should collapse onto %.1f", est.CyclesLo, est.CyclesHi, est.Cycles)
	}
	if want := 30.0 * 50; est.L1Misses != want {
		t.Errorf("L1Misses = %.1f, want %.1f", est.L1Misses, want)
	}
}

// TestExtrapolateAllServiceRegion pins a region fully consumed by
// service work (a collection spanning the whole measured slice): its
// application CPI is zero, so the extrapolation reduces to the service
// cycles, and the clamped lower bound equals them exactly.
func TestExtrapolateAllServiceRegion(t *testing.T) {
	regions := []Region{{Instret: 100, Cycles: 4000, ServiceCycles: 4000}}
	est := Extrapolate(regions, 50_000, 4000)
	if est.CPI.Mean != 0 {
		t.Errorf("all-service region CPI = %v, want 0", est.CPI.Mean)
	}
	if est.Cycles != 4000 || est.CyclesLo != 4000 || est.CyclesHi != 4000 {
		t.Errorf("all-service estimate = (%.0f, [%.0f, %.0f]), want all 4000",
			est.Cycles, est.CyclesLo, est.CyclesHi)
	}
}
