package stats

// Sampled-simulation estimator: extrapolates full-run metrics from the
// detailed regions a sampled run measured, in the style of periodic
// region sampling (SMARTS/Pac-Sim). Each region contributes a
// per-instruction rate; the estimator scales the instruction-weighted
// rates to the run's exact total instruction count, which the
// functional fast-forward executes architecturally and therefore counts
// exactly. Cycles spent inside VM services (allocation and garbage
// collection) are excluded from the region rates and added back as an
// exactly measured total: collections are few and individually large
// (up to a quarter of a run's cycles in one burst), far too bursty for
// region sampling, so the sampler always runs them in the detailed lane
// and accounts them directly.

// Region is one measured detailed slice of a sampled run. All fields
// are deltas over the measurement slice except StartInstret, which
// places the slice in the run.
type Region struct {
	StartInstret  uint64 // instruction count at slice start
	Instret       uint64 // instructions retired in the slice
	Cycles        uint64 // cycles elapsed in the slice
	ServiceCycles uint64 // allocation/GC service cycles within the slice
	Accesses      uint64 // demand memory accesses
	L1Misses      uint64
	L2Misses      uint64
	TLBMisses     uint64
	Samples       uint64 // PEBS samples captured (monitored runs only)
}

// AppCycles returns the slice's cycles net of VM service work: the
// application-and-monitoring cost the estimator extrapolates.
func (r Region) AppCycles() uint64 {
	if r.ServiceCycles > r.Cycles {
		return 0
	}
	return r.Cycles - r.ServiceCycles
}

// CPI returns the slice's application cycles per instruction.
func (r Region) CPI() float64 {
	if r.Instret == 0 {
		return 0
	}
	return float64(r.AppCycles()) / float64(r.Instret)
}

// Estimate is the extrapolated full-run picture of a sampled run.
// Point estimates use instruction-weighted region rates; the cycle
// confidence interval comes from the unweighted spread of per-region
// CPI values via Student's t (see MeanCI95), so few-region runs report
// honestly wide intervals. The JSON tags are the serve layer's wire
// contract: a sampled /run response embeds the Estimate verbatim.
type Estimate struct {
	Regions         int    `json:"regions"`
	MeasuredInstret uint64 `json:"measured_instret"` // instructions inside measured slices
	TotalInstret    uint64 `json:"total_instret"`    // exact full-run instruction count
	ServiceCycles   uint64 `json:"service_cycles"`   // exact alloc+GC cycles, counted outside the regions

	CPI      Interval `json:"cpi"`       // per-region application CPI with 95% CI
	Cycles   float64  `json:"cycles"`    // extrapolated full-run cycle count
	CyclesLo float64  `json:"cycles_lo"` // 95% CI on Cycles
	CyclesHi float64  `json:"cycles_hi"`

	Accesses  float64 `json:"accesses"` // extrapolated demand accesses
	L1Misses  float64 `json:"l1_misses"`
	L2Misses  float64 `json:"l2_misses"`
	TLBMisses float64 `json:"tlb_misses"`
	Samples   float64 `json:"samples"` // extrapolated PEBS sample count

	L1PKI Interval `json:"l1_pki"` // per-region L1 misses per kilo-instruction, 95% CI
}

// Extrapolate builds the full-run estimate from measured regions, the
// run's exact total instruction count, and its exactly measured VM
// service cycles. With no regions the estimate degenerates to the
// service cycles alone.
func Extrapolate(regions []Region, totalInstret, serviceCycles uint64) Estimate {
	est := Estimate{
		Regions:       len(regions),
		TotalInstret:  totalInstret,
		ServiceCycles: serviceCycles,
		Cycles:        float64(serviceCycles),
		CyclesLo:      float64(serviceCycles),
		CyclesHi:      float64(serviceCycles),
	}
	var instret, appCycles, acc, l1, l2, tlb, samples uint64
	cpis := make([]float64, 0, len(regions))
	l1pkis := make([]float64, 0, len(regions))
	for _, r := range regions {
		if r.Instret == 0 {
			continue
		}
		instret += r.Instret
		appCycles += r.AppCycles()
		acc += r.Accesses
		l1 += r.L1Misses
		l2 += r.L2Misses
		tlb += r.TLBMisses
		samples += r.Samples
		cpis = append(cpis, r.CPI())
		l1pkis = append(l1pkis, 1000*float64(r.L1Misses)/float64(r.Instret))
	}
	if instret == 0 {
		return est
	}
	est.MeasuredInstret = instret
	est.CPI = MeanCI95(cpis)
	est.L1PKI = MeanCI95(l1pkis)

	total := float64(totalInstret)
	scale := total / float64(instret)
	wcpi := float64(appCycles) / float64(instret)
	est.Cycles = wcpi*total + float64(serviceCycles)
	est.CyclesLo = est.Cycles - est.CPI.Half*total
	est.CyclesHi = est.Cycles + est.CPI.Half*total
	// A few wildly spread regions can push the lower bound below the
	// exactly measured service cycles — a count the run can never finish
	// under (it was already spent). Clamp rather than report the
	// impossible interval.
	if est.CyclesLo < float64(serviceCycles) {
		est.CyclesLo = float64(serviceCycles)
	}
	est.Accesses = float64(acc) * scale
	est.L1Misses = float64(l1) * scale
	est.L2Misses = float64(l2) * scale
	est.TLBMisses = float64(tlb) * scale
	est.Samples = float64(samples) * scale
	return est
}
