package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); !almostEq(got, 0) {
		t.Errorf("StdDev of constants = %v, want 0", got)
	}
	if got := StdDev([]float64{1}); got != 0 {
		t.Errorf("StdDev of singleton = %v, want 0", got)
	}
	// Known value: sample stddev of {2,4,4,4,5,5,7,9} is ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("StdDev = %v, want ~2.13809", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEq(got, 10) {
		t.Errorf("GeoMean(1,100) = %v, want 10", got)
	}
	if got := GeoMean([]float64{-5, 0}); got != 0 {
		t.Errorf("GeoMean of non-positives = %v, want 0", got)
	}
	// Non-positive entries are skipped.
	if got := GeoMean([]float64{0, 4}); !almostEq(got, 4) {
		t.Errorf("GeoMean(0,4) = %v, want 4", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); !almostEq(got, 2) {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); !almostEq(got, 2.5) {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v, want 0", got)
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated input: %v", in)
	}
}

func TestMovingAverage(t *testing.T) {
	in := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(in, 3)
	want := []float64{1, 1.5, 2, 3, 4}
	for i := range want {
		if !almostEq(got[i], want[i]) {
			t.Fatalf("MovingAverage[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMovingAverageWindowOneIsIdentity(t *testing.T) {
	// The rolling-sum implementation is only numerically exact for
	// reasonably scaled inputs, so the property uses bounded values
	// (metric series are counts and rates, not 1e308 extremes).
	f := func(raw []int32) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		out := MovingAverage(xs, 1)
		for i := range xs {
			if !almostEq(out[i], xs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMovingAverageBounds(t *testing.T) {
	// Property: each moving average lies within [min, max] of the input.
	f := func(raw []uint8, w uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			xs[i] = float64(v)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		for _, m := range MovingAverage(xs, int(w%8)+1) {
			if m < lo-1e-9 || m > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "test"
	s.Add(10, 1)
	s.Add(20, 2)
	s.Add(30, 4)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Last(); got != 4 {
		t.Errorf("Last = %v", got)
	}
	cum := s.Cumulative()
	want := []float64{1, 3, 7}
	for i, v := range cum.Values() {
		if !almostEq(v, want[i]) {
			t.Errorf("Cumulative[%d] = %v, want %v", i, v, want[i])
		}
	}
	if times := cum.Times(); times[2] != 30 {
		t.Errorf("Cumulative keeps times, got %v", times)
	}
	sm := s.Smoothed(2)
	if !almostEq(sm.Values()[2], 3) {
		t.Errorf("Smoothed[2] = %v, want 3", sm.Values()[2])
	}
	var empty Series
	if empty.Last() != 0 {
		t.Error("Last of empty series should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Observe(3)
	h.Observe(3)
	h.Observe(7)
	if h.Count(3) != 2 || h.Count(7) != 1 || h.Count(99) != 0 {
		t.Errorf("counts wrong: %d %d %d", h.Count(3), h.Count(7), h.Count(99))
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d", h.Total())
	}
	keys := h.Keys()
	if len(keys) != 2 || keys[0] != 3 || keys[1] != 7 {
		t.Errorf("Keys = %v", keys)
	}
}
