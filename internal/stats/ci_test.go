package stats

import (
	"math"
	"testing"
)

func TestTInv95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{0, 12.706}, // degenerate: clamped to df=1
		{1, 12.706},
		{2, 4.303},
		{10, 2.228},
		{30, 2.042},
		{35, 2.021},
		{50, 2.000},
		{100, 1.980},
		{1000, 1.960},
	}
	for _, c := range cases {
		if got := TInv95(c.df); got != c.want {
			t.Errorf("TInv95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	// Monotone non-increasing in df: wider intervals for fewer samples.
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		q := TInv95(df)
		if q > prev {
			t.Fatalf("TInv95 increased at df=%d: %v > %v", df, q, prev)
		}
		prev = q
	}
}

func TestMeanCI95(t *testing.T) {
	// Degenerate inputs: no spread to estimate from.
	for _, xs := range [][]float64{nil, {42}} {
		iv := MeanCI95(xs)
		if iv.Half != 0 || iv.Lo != iv.Mean || iv.Hi != iv.Mean {
			t.Errorf("MeanCI95(%v) not degenerate: %+v", xs, iv)
		}
	}

	// Hand-checked: n=4, mean 2.5, sample stddev ~1.29099,
	// half-width = t(3) * s / sqrt(4) = 3.182 * 1.29099 / 2.
	iv := MeanCI95([]float64{1, 2, 3, 4})
	wantHalf := 3.182 * math.Sqrt(5.0/3.0) / 2
	if math.Abs(iv.Mean-2.5) > 1e-9 || math.Abs(iv.Half-wantHalf) > 1e-6 {
		t.Errorf("MeanCI95 = %+v, want mean 2.5 half %v", iv, wantHalf)
	}
	if !almostEq(iv.Lo, iv.Mean-iv.Half) || !almostEq(iv.Hi, iv.Mean+iv.Half) {
		t.Errorf("interval endpoints inconsistent: %+v", iv)
	}
	if iv.N != 4 {
		t.Errorf("N = %d, want 4", iv.N)
	}

	// Constant samples: zero-width interval around the value.
	iv = MeanCI95([]float64{7, 7, 7})
	if iv.Half != 0 || iv.Lo != 7 || iv.Hi != 7 {
		t.Errorf("constant samples: %+v", iv)
	}
}

func TestExtrapolate(t *testing.T) {
	// Two regions at CPI 2 covering 200 of 1000 instructions, plus 500
	// exactly-counted service cycles: estimate = 2*1000 + 500.
	regions := []Region{
		{StartInstret: 0, Instret: 100, Cycles: 210, ServiceCycles: 10, Accesses: 40, L1Misses: 4, L2Misses: 2, TLBMisses: 1, Samples: 3},
		{StartInstret: 500, Instret: 100, Cycles: 200, Accesses: 60, L1Misses: 6, L2Misses: 4, TLBMisses: 1, Samples: 5},
	}
	est := Extrapolate(regions, 1000, 500)
	if est.Regions != 2 || est.MeasuredInstret != 200 || est.TotalInstret != 1000 {
		t.Fatalf("bookkeeping wrong: %+v", est)
	}
	if !almostEq(est.Cycles, 2500) {
		t.Errorf("Cycles = %v, want 2500", est.Cycles)
	}
	// Both regions have CPI exactly 2 — degenerate interval.
	if !almostEq(est.CPI.Mean, 2) || !almostEq(est.CyclesLo, est.CyclesHi) {
		t.Errorf("CPI interval = %+v, CyclesLo/Hi = %v/%v", est.CPI, est.CyclesLo, est.CyclesHi)
	}
	// Counts scale by total/measured = 5x.
	if !almostEq(est.Accesses, 500) || !almostEq(est.L1Misses, 50) ||
		!almostEq(est.L2Misses, 30) || !almostEq(est.TLBMisses, 10) || !almostEq(est.Samples, 40) {
		t.Errorf("scaled counts wrong: %+v", est)
	}
	if !almostEq(est.L1PKI.Mean, 50) { // (40 + 60)/2 per-region misses-per-kilo
		t.Errorf("L1PKI = %+v, want mean 50", est.L1PKI)
	}

	// Unequal CPIs: the CI brackets the estimate and widens with spread.
	regions[1].Cycles = 400
	est = Extrapolate(regions, 1000, 500)
	if est.CyclesLo >= est.Cycles || est.CyclesHi <= est.Cycles {
		t.Errorf("CI does not bracket: [%v, %v] around %v", est.CyclesLo, est.CyclesHi, est.Cycles)
	}

	// No regions (or empty ones): degenerate to the service cycles.
	for _, rs := range [][]Region{nil, {{StartInstret: 5}}} {
		est := Extrapolate(rs, 1000, 500)
		if !almostEq(est.Cycles, 500) || est.MeasuredInstret != 0 {
			t.Errorf("Extrapolate(%v) = %+v, want degenerate 500", rs, est)
		}
	}
}

func TestRegionAppCyclesAndCPI(t *testing.T) {
	r := Region{Instret: 100, Cycles: 250, ServiceCycles: 50}
	if got := r.AppCycles(); got != 200 {
		t.Errorf("AppCycles = %d, want 200", got)
	}
	if !almostEq(r.CPI(), 2) {
		t.Errorf("CPI = %v, want 2", r.CPI())
	}
	// Service cycles can exceed slice cycles only through accounting
	// skew at phase edges; clamp, never underflow.
	r = Region{Instret: 10, Cycles: 5, ServiceCycles: 9}
	if got := r.AppCycles(); got != 0 {
		t.Errorf("AppCycles clamped = %d, want 0", got)
	}
	if (Region{}).CPI() != 0 {
		t.Error("CPI of empty region should be 0")
	}
}
