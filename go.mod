module hpmvm

go 1.22
