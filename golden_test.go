// Golden-equivalence corpus: pins the simulator's observable output —
// final metrics, obs exports, and whole-system snapshot fingerprints —
// against recorded goldens for every registered workload under both
// collectors, with and without monitoring and co-allocation.
//
// The corpus exists so hot-path rewrites (predecoded interpreter, MRU
// cache filter, page-pointer memoization, event-horizon run loop) can
// prove byte-identical behavior: any change to charged cycles, miss
// counts, PEBS sample placement, LRU stamp order, or snapshot encoding
// shows up as a fingerprint mismatch here.
//
// Regenerate after an intentional simulation-semantics change with
// scripts/regen_goldens.sh (wraps `go test -run TestGoldenEquivalence
// -golden-regen`). Never regenerate to make a perf-only change pass.
package hpmvm_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"hpmvm/internal/bench"
	_ "hpmvm/internal/bench/workloads"
	"hpmvm/internal/core"
)

var goldenRegen = flag.Bool("golden-regen", false, "rewrite testdata/goldens from the current simulator instead of comparing")

// goldenPauseCycles is where the snapshot fingerprint is taken: early
// enough that every workload is still running (the shortest, fop,
// retires ~7.9M cycles), late enough that caches, heap and monitor
// state are warm and any hot-path divergence has had room to surface.
const goldenPauseCycles = 2_000_000

// goldenConfig is one point of the per-workload configuration matrix.
type goldenConfig struct {
	Name string
	Cfg  bench.RunConfig
}

// goldenConfigs spans {GenMS, GenCopy} × monitoring × co-allocation.
// Observe is on everywhere (it is passive, and pins the obs export);
// the monitored points use a fixed interval so the PEBS RNG sequence
// is part of the pin.
func goldenConfigs() []goldenConfig {
	return []goldenConfig{
		{"genms", bench.RunConfig{Collector: core.GenMS, Seed: 1, Observe: true}},
		{"genms-mon", bench.RunConfig{Collector: core.GenMS, Monitoring: true, Interval: 500, Seed: 1, Observe: true}},
		{"genms-coalloc", bench.RunConfig{Collector: core.GenMS, Coalloc: true, Interval: 500, Seed: 1, Observe: true}},
		{"gencopy", bench.RunConfig{Collector: core.GenCopy, Seed: 1, Observe: true}},
		{"gencopy-mon", bench.RunConfig{Collector: core.GenCopy, Monitoring: true, Interval: 500, Seed: 1, Observe: true}},
	}
}

// goldenEntry is the recorded fingerprint for one (workload, config).
// Cycles and Instret are stored raw for debuggability; the hashes pin
// everything else.
type goldenEntry struct {
	Cycles        uint64 `json:"cycles"`
	Instret       uint64 `json:"instret"`
	ResultSHA256  string `json:"result_sha256"`   // canonical rendering of bench.Result
	ObsSHA256     string `json:"obs_sha256"`      // obs.Metrics JSON export
	SnapSHA256    string `json:"snapshot_sha256"` // encoded snapshot at goldenPauseCycles
	SnapshotBytes int    `json:"snapshot_bytes"`
}

// goldenFile is one workload's recorded corpus.
type goldenFile struct {
	Workload    string                 `json:"workload"`
	PauseCycles uint64                 `json:"pause_cycles"`
	Configs     map[string]goldenEntry `json:"configs"`
}

func goldenPath(workload string) string {
	return filepath.Join("testdata", "goldens", workload+".json")
}

// resultFingerprint renders every simulated metric of a Result in a
// fixed order and hashes it. Config and Obs are deliberately excluded:
// Config is an input, and the obs export is hashed separately.
func resultFingerprint(r *bench.Result) string {
	h := sha256.New()
	fmt.Fprintf(h, "program=%s heap=%d\n", r.Program, r.HeapBytes)
	fmt.Fprintf(h, "cycles=%d instret=%d\n", r.Cycles, r.Instret)
	// The cache line spells out the pre-swprefetch field set in %+v
	// byte format: the corpus was recorded against that rendering, and
	// the golden configurations never enable software prefetching, so
	// the sw counters are asserted zero rather than silently hashed.
	c := r.Cache
	if c.SwPrefetches != 0 || c.SwPrefetchHits != 0 {
		fmt.Fprintf(h, "swprefetch=%d/%d\n", c.SwPrefetches, c.SwPrefetchHits)
	}
	fmt.Fprintf(h, "cache={Accesses:%d Loads:%d Stores:%d L1Misses:%d L2Misses:%d TLBMisses:%d Writebacks:%d Prefetches:%d PrefetchHits:%d Cycles:%d}\n",
		c.Accesses, c.Loads, c.Stores, c.L1Misses, c.L2Misses, c.TLBMisses,
		c.Writebacks, c.Prefetches, c.PrefetchHits, c.Cycles)
	fmt.Fprintf(h, "gc minor=%d major=%d pairs=%d gccycles=%d frag=%.9f\n",
		r.MinorGCs, r.MajorGCs, r.CoallocPairs, r.GCCycles, r.Fragmentation)
	fmt.Fprintf(h, "monitor=%+v samples=%d\n", r.MonitorStats, r.SamplesTaken)
	fmt.Fprintf(h, "space=%+v\n", r.Space)
	fmt.Fprintf(h, "results=%v\n", r.Results)
	return hex.EncodeToString(h.Sum(nil))
}

func obsFingerprint(t *testing.T, r *bench.Result) string {
	t.Helper()
	if r.Obs == nil {
		t.Fatal("golden run missing obs snapshot (Observe not plumbed?)")
	}
	h := sha256.New()
	if err := r.Obs.WriteJSON(h); err != nil {
		t.Fatalf("obs export: %v", err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// captureEntry executes one (workload, config) point: a full cold run
// for the final metrics and obs export, plus a short prefix run whose
// encoded whole-system snapshot pins the exact intermediate hardware
// state (tag arrays, LRU stamps, page contents, PEBS buffer, RNG).
func captureEntry(t *testing.T, b bench.Builder, gc goldenConfig) goldenEntry {
	t.Helper()
	res, _, err := bench.Run(b, gc.Cfg)
	if err != nil {
		t.Fatalf("%s: run: %v", gc.Name, err)
	}
	snap, err := bench.RunPrefix(b, gc.Cfg, goldenPauseCycles)
	if err != nil {
		t.Fatalf("%s: prefix snapshot: %v", gc.Name, err)
	}
	sum := sha256.Sum256(snap)
	return goldenEntry{
		Cycles:        res.Cycles,
		Instret:       res.Instret,
		ResultSHA256:  resultFingerprint(res),
		ObsSHA256:     obsFingerprint(t, res),
		SnapSHA256:    hex.EncodeToString(sum[:]),
		SnapshotBytes: len(snap),
	}
}

// goldenWorkloads returns the workload set for this build: everything,
// unless the race-instrumented build trims it (see golden_race_test.go).
func goldenWorkloads() []string {
	if len(goldenRaceSubset) > 0 {
		return goldenRaceSubset
	}
	return bench.Names()
}

// TestGoldenEquivalence compares the current simulator against the
// recorded corpus — the keystone gate for hot-path rewrites. With
// -golden-regen it rewrites the corpus instead.
func TestGoldenEquivalence(t *testing.T) {
	for _, workload := range goldenWorkloads() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			b, err := bench.Lookup(workload)
			if err != nil {
				t.Fatal(err)
			}
			if *goldenRegen {
				regenGolden(t, workload, b)
				return
			}
			data, err := os.ReadFile(goldenPath(workload))
			if err != nil {
				t.Fatalf("missing golden (run scripts/regen_goldens.sh): %v", err)
			}
			var want goldenFile
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden: %v", err)
			}
			if want.PauseCycles != goldenPauseCycles {
				t.Fatalf("golden recorded at pause %d, test uses %d — regenerate", want.PauseCycles, goldenPauseCycles)
			}
			for _, gc := range goldenConfigs() {
				gc := gc
				t.Run(gc.Name, func(t *testing.T) {
					wantE, ok := want.Configs[gc.Name]
					if !ok {
						t.Fatalf("golden missing config %q — regenerate", gc.Name)
					}
					got := captureEntry(t, b, gc)
					if got != wantE {
						t.Errorf("fingerprint mismatch:\n got %+v\nwant %+v", got, wantE)
					}
				})
			}
		})
	}
}

func regenGolden(t *testing.T, workload string, b bench.Builder) {
	t.Helper()
	gf := goldenFile{
		Workload:    workload,
		PauseCycles: goldenPauseCycles,
		Configs:     map[string]goldenEntry{},
	}
	for _, gc := range goldenConfigs() {
		gf.Configs[gc.Name] = captureEntry(t, b, gc)
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath(workload)), 0o755); err != nil {
		t.Fatal(err)
	}
	// Marshal with sorted config names (map keys marshal sorted) so
	// regeneration diffs are minimal.
	data, err := json.MarshalIndent(gf, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(workload), append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(gf.Configs))
	for n := range gf.Configs {
		names = append(names, n)
	}
	sort.Strings(names)
	t.Logf("recorded %s (%d configs: %v)", goldenPath(workload), len(names), names)
}
