// Sampled-simulation keystone tests: pin the two-lane CPU's region
// scheduler against the cycle-exact simulation (DESIGN.md §12).
//
// The load-bearing property is functional warming: during fast-forward
// the hierarchy keeps evolving its tag state (and delivering hardware
// events) while charging a flat cost, so a detailed region entered from
// a fast-forwarded machine sees exactly the cache/TLB state the
// cycle-exact run would have at the same instruction. The tests here
// verify that property end to end, region by region, and calibrate the
// estimator's error bound (`make verify-sampling`).
package hpmvm_test

import (
	"fmt"
	"math"
	"testing"

	"hpmvm/internal/bench"
	_ "hpmvm/internal/bench/workloads"
	"hpmvm/internal/vm/runtime"
)

// TestSampledRegionsMatchExact is the keystone: every measured region
// of a sampled run, reached through functional fast-forward, must
// report metrics EXACTLY identical to the same instruction window of a
// cycle-exact run. Not approximately — identically: the schedule is a
// pure function of the instruction stream, functional warming evolves
// the tag state through the same probe/fill decisions as detailed
// accesses, and services always run detailed, so the detailed lane's
// cycle and miss deltas over any window are independent of how the
// machine got there.
func TestSampledRegionsMatchExact(t *testing.T) {
	for _, name := range []string{"fop", "compress"} {
		t.Run(name, func(t *testing.T) {
			b, err := bench.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			scfg := runtime.DefaultSamplingConfig()
			_, ssys, err := bench.Run(b, bench.RunConfig{Seed: 1, Sampling: &scfg})
			if err != nil {
				t.Fatal(err)
			}
			regions := ssys.VM.Sampler().Regions()
			if len(regions) < 5 {
				t.Fatalf("only %d measured regions — workload too short to pin anything", len(regions))
			}

			// Walk a cycle-exact machine to each region's instruction
			// boundaries and compare the window deltas.
			prog, esys, err := bench.BuildSystem(b, bench.RunConfig{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			esys.Hier().Flush()
			esys.Hier().ResetStats()
			if err := esys.VM.Start(prog.Entry); err != nil {
				t.Fatal(err)
			}
			for i, r := range regions {
				if err := esys.VM.RunToInstret(r.StartInstret); err != nil {
					t.Fatal(err)
				}
				c0, s0 := esys.VM.CPU.Cycles(), esys.Hier().Stats()
				if err := esys.VM.RunToInstret(r.StartInstret + r.Instret); err != nil {
					t.Fatal(err)
				}
				c1, s1 := esys.VM.CPU.Cycles(), esys.Hier().Stats()
				if got := esys.VM.CPU.Instret(); got != r.StartInstret+r.Instret {
					t.Fatalf("region %d: exact machine stopped at instret %d, want %d", i, got, r.StartInstret+r.Instret)
				}
				exact := [5]uint64{c1 - c0, s1.Accesses - s0.Accesses,
					s1.L1Misses - s0.L1Misses, s1.L2Misses - s0.L2Misses, s1.TLBMisses - s0.TLBMisses}
				sampled := [5]uint64{r.Cycles, r.Accesses, r.L1Misses, r.L2Misses, r.TLBMisses}
				if exact != sampled {
					t.Errorf("region %d (instret %d+%d): sampled [cyc acc l1 l2 tlb] = %v, exact window = %v",
						i, r.StartInstret, r.Instret, sampled, exact)
				}
			}
		})
	}
}

// TestSamplingRegionsFlatCostInvariant pins that the flat fast-forward
// charge distorts only the sampled run's own clock, never the measured
// regions: the schedule is instruction-based and the regions are
// measured in the detailed lane, so a 25x different FlatMemCycles must
// reproduce every region byte for byte.
func TestSamplingRegionsFlatCostInvariant(t *testing.T) {
	b, err := bench.Lookup("fop")
	if err != nil {
		t.Fatal(err)
	}
	cfgA := runtime.DefaultSamplingConfig()
	cfgB := runtime.DefaultSamplingConfig()
	cfgB.FlatMemCycles = 50
	_, sysA, err := bench.Run(b, bench.RunConfig{Seed: 1, Sampling: &cfgA})
	if err != nil {
		t.Fatal(err)
	}
	_, sysB, err := bench.Run(b, bench.RunConfig{Seed: 1, Sampling: &cfgB})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := sysA.VM.Sampler().Regions(), sysB.VM.Sampler().Regions()
	if len(ra) != len(rb) {
		t.Fatalf("region counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Errorf("region %d differs across flat costs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

// TestSamplingAllMeasureMatchesExact pins the degenerate schedule that
// never fast-forwards (the measured region covers the whole run): it
// must be byte-identical to the exact simulation — cycles, instructions,
// cache statistics and program results.
func TestSamplingAllMeasureMatchesExact(t *testing.T) {
	for _, name := range []string{"fop", "jess"} {
		t.Run(name, func(t *testing.T) {
			b, err := bench.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			exact, _, err := bench.Run(b, bench.RunConfig{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			all := runtime.SamplingConfig{FFInstrs: 1, WarmupInstrs: 1, MeasureInstrs: 1 << 62, FlatMemCycles: 2}
			sampled, _, err := bench.Run(b, bench.RunConfig{Seed: 1, Sampling: &all})
			if err != nil {
				t.Fatal(err)
			}
			if sampled.Cycles != exact.Cycles || sampled.Instret != exact.Instret {
				t.Errorf("all-measure run diverged: cycles %d vs %d, instret %d vs %d",
					sampled.Cycles, exact.Cycles, sampled.Instret, exact.Instret)
			}
			if sampled.Cache != exact.Cache {
				t.Errorf("all-measure cache stats diverged:\nsampled %+v\nexact   %+v", sampled.Cache, exact.Cache)
			}
			// The estimate extrapolates over the 1-instruction warmup
			// slice outside the region, so it is near-exact, not exact.
			if est := sampled.Estimated; est == nil {
				t.Error("sampled run carries no estimate")
			} else if math.Abs(est.Cycles/float64(exact.Cycles)-1) > 1e-4 {
				t.Errorf("all-measure estimate %.1f, want exact %d within 0.01%%", est.Cycles, exact.Cycles)
			}
		})
	}
}

// TestSamplingCalibration is the calibration sweep behind
// `make verify-sampling`: on a 4-workload subset spanning the cache
// behaviour extremes (compress: tight loops; jess: allocation-heavy;
// jack: phase-structured, the worst case under the default schedule;
// db: pointer-chasing), each workload's *calibrated* schedule
// (bench.CalibratedSampling — the default for all but jack) must hold
// its full-run cycle estimate within its documented bound of the
// cycle-exact simulation, and the sampled run must retire the
// identical architectural instruction stream. jack's tighter schedule
// carries a tighter bound: that is what the calibration table buys.
func TestSamplingCalibration(t *testing.T) {
	bounds := map[string]float64{ // percent
		"compress": 2.0, "jess": 2.0, "db": 2.0,
		"jack": 0.5, // calibration-table entry; see bench/calibration.go
	}
	for _, name := range []string{"compress", "jess", "jack", "db"} {
		t.Run(name, func(t *testing.T) {
			bound := bounds[name]
			scfg := bench.CalibratedSampling(name)
			b, err := bench.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			exact, _, err := bench.Run(b, bench.RunConfig{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			sampled, _, err := bench.Run(b, bench.RunConfig{Seed: 1, Sampling: &scfg})
			if err != nil {
				t.Fatal(err)
			}
			if sampled.Instret != exact.Instret {
				t.Errorf("sampled run retired %d instructions, exact %d — fast-forward changed the architectural stream",
					sampled.Instret, exact.Instret)
			}
			est := sampled.Estimated
			if est == nil {
				t.Fatal("sampled run carries no estimate")
			}
			errPct := 100 * (est.Cycles/float64(exact.Cycles) - 1)
			t.Logf("%s: est %.0f vs exact %d = %+.2f%% (%d regions, %.1f%% measured)",
				name, est.Cycles, exact.Cycles, errPct, est.Regions,
				100*float64(est.MeasuredInstret)/float64(est.TotalInstret))
			if math.Abs(errPct) > bound {
				t.Errorf("cycle estimate off by %+.2f%%, bound %.1f%%", errPct, bound)
			}
			if est.CyclesLo < float64(est.ServiceCycles) {
				t.Errorf("CyclesLo %.0f below the exactly measured service cycles %d", est.CyclesLo, est.ServiceCycles)
			}
			if est.CyclesLo > est.Cycles || est.CyclesHi < est.Cycles {
				t.Errorf("confidence interval [%.0f, %.0f] does not bracket the estimate %.0f",
					est.CyclesLo, est.CyclesHi, est.Cycles)
			}
		})
	}
}

// TestSamplingNoWarmup pins the explicit-zero warmup path end to end:
// a NoWarmup schedule — previously inexpressible, since a zero field
// means "default" — must actually run with empty warmup phases
// (producing a different region placement than the default schedule,
// measured straight out of fast-forward) while retiring the identical
// architectural stream and still estimating within a loose bound. The
// companion config-level test (internal/vm/runtime) pins the sentinel
// semantics; this one proves the scheduler survives a zero-length
// phase at run start and at every period boundary.
func TestSamplingNoWarmup(t *testing.T) {
	b, err := bench.Lookup("fop")
	if err != nil {
		t.Fatal(err)
	}
	exact, _, err := bench.Run(b, bench.RunConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nw := runtime.SamplingConfig{WarmupInstrs: runtime.NoWarmup}
	sampled, ssys, err := bench.Run(b, bench.RunConfig{Seed: 1, Sampling: &nw})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Instret != exact.Instret {
		t.Errorf("no-warmup run retired %d instructions, exact %d", sampled.Instret, exact.Instret)
	}
	regions := ssys.VM.Sampler().Regions()
	if len(regions) < 5 {
		t.Fatalf("only %d measured regions", len(regions))
	}
	// The schedule must differ from the default one: without warmup
	// slices the periods are 10K instructions shorter, so the region
	// placement diverges — proof the sentinel did not fall back to the
	// default warmup.
	def := runtime.DefaultSamplingConfig()
	_, dsys, err := bench.Run(b, bench.RunConfig{Seed: 1, Sampling: &def})
	if err != nil {
		t.Fatal(err)
	}
	dregions := dsys.VM.Sampler().Regions()
	if len(regions) > 1 && len(dregions) > 1 && regions[1].StartInstret == dregions[1].StartInstret {
		t.Errorf("no-warmup schedule placed region 1 at instret %d, identical to the default schedule — sentinel ignored?", regions[1].StartInstret)
	}
	if est := sampled.Estimated; est == nil {
		t.Error("no-warmup run carries no estimate")
	} else if errPct := 100 * (est.Cycles/float64(exact.Cycles) - 1); math.Abs(errPct) > 5 {
		// Unwarmed regions see cold-ish caches after fast-forward, so the
		// bound is loose — the point is a sane estimate, not a calibrated
		// one.
		t.Errorf("no-warmup estimate off by %+.2f%%", errPct)
	}
}

// TestSamplingFig5Path pins the heap-size axis of the sampled-pass
// machinery (the sampling-fig5 experiment): at the extreme fig5 heap
// factors, a multiplexed pass's baseline and monitored-auto estimates
// must stay within the documented 2% bound of their exact
// counterparts. Heap sizing changes GC pressure and therefore the
// service-cycle share, so this covers estimator behaviour the fig2
// grid (fixed 4x heap) cannot.
func TestSamplingFig5Path(t *testing.T) {
	b, err := bench.Lookup("compress")
	if err != nil {
		t.Fatal(err)
	}
	for _, factor := range []float64{1, 4} {
		t.Run(fmt.Sprintf("%gx", factor), func(t *testing.T) {
			exactBase, _, err := bench.Run(b, bench.RunConfig{HeapFactor: factor, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			exactMon, _, err := bench.Run(b, bench.RunConfig{HeapFactor: factor, Monitoring: true, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			pass, err := bench.RunSampledPass(b, bench.RunConfig{HeapFactor: factor, Seed: 1}, []uint64{0}, 1)
			if err != nil {
				t.Fatal(err)
			}
			baseErr := 100 * (pass.Estimate.Cycles/float64(exactBase.Cycles) - 1)
			monErr := 100 * (pass.MonCycles[0][0]/float64(exactMon.Cycles) - 1)
			t.Logf("%gx: base %+.2f%%, monitored-auto %+.2f%%", factor, baseErr, monErr)
			if math.Abs(baseErr) > 2 {
				t.Errorf("baseline estimate off by %+.2f%% at heap %gx", baseErr, factor)
			}
			if math.Abs(monErr) > 2 {
				t.Errorf("monitored estimate off by %+.2f%% at heap %gx", monErr, factor)
			}
		})
	}
}

// TestSampledPassEventDelivery pins functional warming's listener
// contract: a PEBS unit attached to a sampled run must observe the full
// hardware event stream — fast-forwarded accesses included — not just
// the measured fraction. Without it, sample counts (and everything the
// monitor derives from them) would be biased by the measured fraction.
func TestSampledPassEventDelivery(t *testing.T) {
	b, err := bench.Lookup("fop")
	if err != nil {
		t.Fatal(err)
	}
	exact, _, err := bench.Run(b, bench.RunConfig{Seed: 1, Monitoring: true, Interval: 500})
	if err != nil {
		t.Fatal(err)
	}
	scfg := runtime.DefaultSamplingConfig()
	sampled, _, err := bench.Run(b, bench.RunConfig{Seed: 1, Monitoring: true, Interval: 500, Sampling: &scfg})
	if err != nil {
		t.Fatal(err)
	}
	// The architectural stream is identical and warming fires the same
	// events at the same points, so the unit draws the same PRNG
	// sequence and takes the same samples.
	if sampled.SamplesTaken != exact.SamplesTaken {
		t.Errorf("sampled run took %d samples, exact %d — fast-forward is dropping hardware events",
			sampled.SamplesTaken, exact.SamplesTaken)
	}
}
