//go:build !race

package hpmvm_test

// goldenRaceSubset is empty outside race builds: the golden corpus
// covers every registered workload (see golden_race_test.go for the
// race-lane trim).
var goldenRaceSubset []string
