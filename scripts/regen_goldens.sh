#!/bin/sh
# Regenerate the golden-equivalence corpus under testdata/goldens/.
#
# The corpus pins final metrics, obs exports and snapshot fingerprints
# for every workload x config point (see golden_test.go). Regenerate it
# only after an INTENTIONAL simulation-semantics change — a hot-path or
# refactoring PR must pass against the existing corpus unchanged.
#
# Usage: scripts/regen_goldens.sh [extra go test args]
set -eu
cd "$(dirname "$0")/.."
go test -run '^TestGoldenEquivalence$' -timeout 60m -golden-regen -count=1 "$@" .
echo "regenerated $(ls testdata/goldens/*.json | wc -l) golden files"
