#!/bin/sh
# serve_bench_smoke.sh — boot a 2-worker process fleet, run the full
# protocol checks against the coordinator (byte-identity now spans
# worker processes), then a short hpmvmbench burst asserting nonzero
# sustained RPS and the per-worker byte-identity probe, then a clean
# drain of the whole tree.
#
# Usage: scripts/serve_bench_smoke.sh [port]   (default 18090)
set -eu

PORT="${1:-18090}"
ADDR="127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "serve-bench-smoke: building hpmvmd + servesmoke + hpmvmbench"
go build -o "$TMP/hpmvmd" ./cmd/hpmvmd
go build -o "$TMP/servesmoke" ./scripts/servesmoke
go build -o "$TMP/hpmvmbench" ./cmd/hpmvmbench

"$TMP/hpmvmd" -addr "$ADDR" -workers 2 -jobs 1 &
PID=$!

# The coordinator opens its listener only after every worker forked,
# published its port and answered healthz.
i=0
until curl -sf "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "serve-bench-smoke: FAIL — fleet did not become healthy" >&2
        exit 1
    fi
    sleep 0.2
done

workers=$(curl -sf "http://$ADDR/v1/healthz" | grep -o '"workers":2' || true)
if [ -z "$workers" ]; then
    echo "serve-bench-smoke: FAIL — healthz does not report 2 workers" >&2
    exit 1
fi

echo "serve-bench-smoke: protocol checks against the coordinator"
"$TMP/servesmoke" -url "http://$ADDR"

echo "serve-bench-smoke: load burst (cachehot, 3s)"
"$TMP/hpmvmbench" -url "http://$ADDR" -mix cachehot -clients 8 -duration 3s \
    -label bench-smoke -min-rps 50

echo "serve-bench-smoke: draining fleet"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        echo "serve-bench-smoke: FAIL — coordinator did not exit on SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$PID" 2>/dev/null || true

echo "serve-bench-smoke: OK — 2-worker fleet byte-identical, nonzero RPS, clean tree drain"
