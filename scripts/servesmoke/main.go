// Command servesmoke is the end-to-end smoke checker for a running
// hpmvmd (single server or fleet coordinator), built on the typed
// internal/client — the same code path external clients use, replacing
// the old shell-and-grep JSON checks in scripts/serve_smoke.sh.
//
// It verifies, against a live daemon:
//
//   - /v1/healthz liveness and /v1/workloads registry
//   - cold run = cache miss, replay = byte-identical cache hit,
//     /v1/statsz reflects both
//   - warm-start prefix: store then hit, responses equal modulo key
//   - sampled runs: estimated block with confidence intervals, cached
//     under a key distinct from the exact run's
//   - sampled+warm_start is refused with the bad_request code
//   - unknown workloads map to the unknown_workload code
//   - the deprecated unversioned paths answer byte-identically with a
//     Deprecation header and a successor-version link
//   - /v1/stream reassembles byte-identically to /v1/run
//   - managed-optimization runs (coalloc, codelayout, swprefetch) surface per-kind
//     decision/revert counters in /v1/statsz
//
// Usage: servesmoke -url http://127.0.0.1:18080
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"hpmvm/internal/api"
	"hpmvm/internal/client"
	"hpmvm/internal/opt"
)

func main() {
	url := "http://127.0.0.1:18080"
	if len(os.Args) == 3 && os.Args[1] == "-url" {
		url = os.Args[2]
	} else if len(os.Args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: servesmoke [-url http://host:port]")
		os.Exit(2)
	}
	if err := smoke(url); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: FAIL — %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: OK — cold=miss, replay=hit, warm=store then hit, sampled=estimated at its own key, v1+legacy byte-identical, stream byte-identical, error codes stable, opt counters in statsz")
}

func smoke(url string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := client.New(client.Config{BaseURL: url})

	// Liveness (the daemon calibrates workloads at startup; the boot
	// wrapper polls healthz before invoking us, so one check suffices).
	if err := c.Healthz(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	workloads, err := c.Workloads(ctx)
	if err != nil || len(workloads) == 0 {
		return fmt.Errorf("workloads: %v (%d rows)", err, len(workloads))
	}

	// Cold run, then byte-identical replay.
	base := api.Request{Workload: "compress", Seed: 1, Monitoring: true, Interval: 25_000}
	cold, err := c.Run(ctx, base)
	if err != nil {
		return fmt.Errorf("cold run: %w", err)
	}
	if cold.Cache != "miss" {
		return fmt.Errorf("cold disposition %q, want miss", cold.Cache)
	}
	hit, err := c.Run(ctx, base)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if hit.Cache != "hit" {
		return fmt.Errorf("replay disposition %q, want hit", hit.Cache)
	}
	if !bytes.Equal(cold.Body, hit.Body) {
		return errors.New("cached response is not byte-identical to the cold one")
	}

	// statsz reflects the hit — on a fleet, in the per-worker rows.
	if err := checkHits(ctx, c); err != nil {
		return err
	}

	// Warm-start prefix: store, then a divergent budget hits, and both
	// describe the same simulation as the cold run (modulo key).
	warm := base
	warm.WarmStartCycles = 2_000_000
	warm2 := warm
	warm2.MaxCycles = 4_000_000_000
	w1, err := c.Run(ctx, warm)
	if err != nil {
		return fmt.Errorf("warm store: %w", err)
	}
	if w1.Snapshot != "store" {
		return fmt.Errorf("first warm disposition %q, want store", w1.Snapshot)
	}
	w2, err := c.Run(ctx, warm2)
	if err != nil {
		return fmt.Errorf("warm divergent: %w", err)
	}
	if w2.Snapshot != "hit" {
		return fmt.Errorf("divergent warm disposition %q, want hit", w2.Snapshot)
	}
	if err := sameModuloKey(cold.Body, w1.Body); err != nil {
		return fmt.Errorf("warm store response: %w", err)
	}
	if err := sameModuloKey(cold.Body, w2.Body); err != nil {
		return fmt.Errorf("warm divergent response: %w", err)
	}

	// Sampled: estimated block, own content address.
	sampled := api.Request{Workload: "compress", Seed: 1, Sampled: true}
	sres, srun, err := c.RunResponse(ctx, sampled)
	if err != nil {
		return fmt.Errorf("sampled run: %w", err)
	}
	if !sres.Sampled || sres.Estimated == nil {
		return errors.New("sampled response lacks its estimated block")
	}
	if sres.Estimated.CyclesLo <= 0 || sres.Estimated.CyclesHi < sres.Estimated.CyclesLo {
		return fmt.Errorf("sampled confidence interval degenerate: [%.0f, %.0f]",
			sres.Estimated.CyclesLo, sres.Estimated.CyclesHi)
	}
	exact, err := c.Run(ctx, api.Request{Workload: "compress", Seed: 1})
	if err != nil {
		return fmt.Errorf("exact run: %w", err)
	}
	if srun.Key == "" || srun.Key == exact.Key {
		return fmt.Errorf("sampled key %q aliases the exact key %q", srun.Key, exact.Key)
	}

	// Typed refusals: sampled+warm is bad_request, unknown workloads
	// have their own code.
	badReq := sampled
	badReq.WarmStartCycles = 1_000_000
	if err := wantCode(c, ctx, badReq, api.CodeBadRequest); err != nil {
		return err
	}
	if err := wantCode(c, ctx, api.Request{Workload: "no_such_workload"}, api.CodeUnknownWorkload); err != nil {
		return err
	}

	// Deprecated alias: byte-identical, flagged, linked to /v1.
	if err := checkLegacyAlias(ctx, url, hit.Body); err != nil {
		return err
	}

	// Stream: reassembles the exact one-shot bytes.
	stream, err := c.RunStream(ctx, base, nil)
	if err != nil {
		return fmt.Errorf("stream run: %w", err)
	}
	if !bytes.Equal(stream.Body, hit.Body) {
		return errors.New("streamed response is not byte-identical to the one-shot body")
	}
	if stream.Cache != "hit" {
		return fmt.Errorf("streamed replay disposition %q, want hit", stream.Cache)
	}

	// Managed optimizations: a coalloc, a codelayout and a swprefetch
	// run must each surface a per-kind counter row in statsz.
	if err := checkOptCounters(ctx, c); err != nil {
		return err
	}
	return nil
}

// checkOptCounters runs db once with co-allocation, once with the
// code-layout optimization and once with software-prefetch injection,
// then asserts /v1/statsz carries one counter row per kind: coalloc
// with decisions (db's hot pairs trigger it at defaults), codelayout
// present (at the default 8 KB instruction cache the optimizer
// correctly declines to relocate, so its row may report zero decisions
// — the row itself proves the framework ran), and swprefetch present
// (at library defaults the conservative warmup guards may decline to
// inject within db's run; the row again proves the framework ran). On
// a fleet the rows are summed by the coordinator.
func checkOptCounters(ctx context.Context, c *client.Client) error {
	if _, err := c.Run(ctx, api.Request{Workload: "db", Seed: 1, Coalloc: true}); err != nil {
		return fmt.Errorf("coalloc run: %w", err)
	}
	if _, err := c.Run(ctx, api.Request{Workload: "db", Seed: 1, CodeLayout: true, Event: "l1i"}); err != nil {
		return fmt.Errorf("codelayout run: %w", err)
	}
	if _, err := c.Run(ctx, api.Request{Workload: "db", Seed: 1, SwPrefetch: true}); err != nil {
		return fmt.Errorf("swprefetch run: %w", err)
	}
	rows, err := optRows(ctx, c)
	if err != nil {
		return err
	}
	byKind := make(map[string]opt.KindStats, len(rows))
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	co, ok := byKind[opt.KindCoalloc]
	if !ok {
		return errors.New("statsz optimizations lack the coalloc row after a coalloc run")
	}
	if co.Decisions == 0 {
		return errors.New("statsz coalloc row reports zero decisions after a db coalloc run")
	}
	if _, ok := byKind[opt.KindCodeLayout]; !ok {
		return errors.New("statsz optimizations lack the codelayout row after a codelayout run")
	}
	if _, ok := byKind[opt.KindSwPrefetch]; !ok {
		return errors.New("statsz optimizations lack the swprefetch row after a swprefetch run")
	}
	return nil
}

// optRows fetches the per-kind optimization counters — the fleet
// aggregate when the daemon is a coordinator, else the single server's.
func optRows(ctx context.Context, c *client.Client) ([]opt.KindStats, error) {
	if fst, err := c.FleetStatsz(ctx); err == nil && fst.Fleet {
		return fst.Optimizations, nil
	}
	st, err := c.Statsz(ctx)
	if err != nil {
		return nil, fmt.Errorf("statsz: %w", err)
	}
	return st.Optimizations, nil
}

// checkHits asserts the result-cache hit shows up in statsz — directly
// on a single server, summed over workers on a fleet.
func checkHits(ctx context.Context, c *client.Client) error {
	if fst, err := c.FleetStatsz(ctx); err == nil && fst.Fleet {
		var hits uint64
		for _, w := range fst.PerWorker {
			if w.Statsz != nil {
				hits += w.Statsz.Cache.Hits
			}
		}
		if hits == 0 {
			return errors.New("fleet statsz reports no cache hits after a replay")
		}
		return nil
	}
	st, err := c.Statsz(ctx)
	if err != nil {
		return fmt.Errorf("statsz: %w", err)
	}
	if st.Cache.Hits == 0 {
		return errors.New("statsz reports no cache hits after a replay")
	}
	if st.Version != api.Version {
		return fmt.Errorf("statsz version %q, want %q", st.Version, api.Version)
	}
	return nil
}

// sameModuloKey asserts two run responses describe the identical
// simulation, differing at most in their content-address key.
func sameModuloKey(a, b []byte) error {
	var ma, mb map[string]any
	if err := json.Unmarshal(a, &ma); err != nil {
		return err
	}
	if err := json.Unmarshal(b, &mb); err != nil {
		return err
	}
	delete(ma, "key")
	delete(mb, "key")
	ca, _ := json.Marshal(ma)
	cb, _ := json.Marshal(mb)
	if !bytes.Equal(ca, cb) {
		return errors.New("responses differ beyond the key field")
	}
	return nil
}

// wantCode asserts a request fails with the given stable error code.
func wantCode(c *client.Client, ctx context.Context, req api.Request, code string) error {
	_, err := c.Run(ctx, req)
	var ae *api.Error
	if !errors.As(err, &ae) {
		return fmt.Errorf("request %+v: error %v, want %s envelope", req, err, code)
	}
	if ae.Code != code {
		return fmt.Errorf("request %+v: code %q, want %q", req, ae.Code, code)
	}
	return nil
}

// checkLegacyAlias hits the unversioned /run with the replayed request
// and asserts deprecation signaling plus byte-identity with /v1/run.
func checkLegacyAlias(ctx context.Context, url string, v1Body []byte) error {
	body := `{"workload":"compress","seed":1,"monitoring":true,"interval":25000}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+api.LegacyPathRun, strings.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("legacy /run: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("legacy /run: HTTP %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get(api.HeaderDeprecation) != "true" {
		return errors.New("legacy /run lacks the Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, api.PathRun) {
		return fmt.Errorf("legacy /run Link header %q does not name the successor %s", link, api.PathRun)
	}
	if !bytes.Equal(data, v1Body) {
		return errors.New("legacy /run response differs from /v1/run")
	}
	return nil
}
