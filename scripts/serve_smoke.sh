#!/bin/sh
# serve_smoke.sh — end-to-end check of the hpmvmd deterministic result
# cache: boot the daemon, send the same run request twice, and assert
# the second response is a byte-identical cache hit. Exercises the real
# binary, the real HTTP path and the real simulation (one cold run of
# the compress workload), then verifies graceful SIGTERM shutdown.
#
# Usage: scripts/serve_smoke.sh [port]   (default 18080)
set -eu

PORT="${1:-18080}"
ADDR="127.0.0.1:${PORT}"
BODY='{"workload":"compress","seed":1,"monitoring":true,"interval":25000}'
TMP="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "serve-smoke: building hpmvmd"
go build -o "$TMP/hpmvmd" ./cmd/hpmvmd

"$TMP/hpmvmd" -addr "$ADDR" -cache 16 &
PID=$!

# Wait for liveness (the daemon calibrates every workload at startup).
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: FAIL — daemon did not become healthy" >&2
        exit 1
    fi
    sleep 0.2
done

echo "serve-smoke: cold request"
curl -sf -D "$TMP/h1" -X POST -d "$BODY" "http://$ADDR/run" -o "$TMP/r1"
echo "serve-smoke: cached request"
curl -sf -D "$TMP/h2" -X POST -d "$BODY" "http://$ADDR/run" -o "$TMP/r2"

disp1=$(tr -d '\r' <"$TMP/h1" | awk -F': ' 'tolower($1)=="x-hpmvmd-cache"{print $2}')
disp2=$(tr -d '\r' <"$TMP/h2" | awk -F': ' 'tolower($1)=="x-hpmvmd-cache"{print $2}')
if [ "$disp1" != "miss" ]; then
    echo "serve-smoke: FAIL — first request disposition '$disp1', want miss" >&2
    exit 1
fi
if [ "$disp2" != "hit" ]; then
    echo "serve-smoke: FAIL — second request disposition '$disp2', want hit" >&2
    exit 1
fi
if ! cmp -s "$TMP/r1" "$TMP/r2"; then
    echo "serve-smoke: FAIL — cached response is not byte-identical to the cold one" >&2
    exit 1
fi

hits=$(curl -sf "http://$ADDR/statsz" | grep -c '"hits": 1') || true
if [ "$hits" != "1" ]; then
    echo "serve-smoke: FAIL — /statsz does not report the cache hit" >&2
    exit 1
fi

# Warm-start snapshot-prefix cache: the first warm request simulates
# and stores the prefix snapshot ("store"); a second request sharing
# the prefix but diverging in its cycle budget must reuse it ("hit").
# Both, and the plain cold run, describe the same simulation — the
# bodies may differ only in the request key.
WARM='{"workload":"compress","seed":1,"monitoring":true,"interval":25000,"warm_start_cycles":2000000}'
WARM2='{"workload":"compress","seed":1,"monitoring":true,"interval":25000,"warm_start_cycles":2000000,"max_cycles":4000000000}'

echo "serve-smoke: warm-start store request"
curl -sf -D "$TMP/h3" -X POST -d "$WARM" "http://$ADDR/run" -o "$TMP/r3"
echo "serve-smoke: warm-start divergent request"
curl -sf -D "$TMP/h4" -X POST -d "$WARM2" "http://$ADDR/run" -o "$TMP/r4"

snap1=$(tr -d '\r' <"$TMP/h3" | awk -F': ' 'tolower($1)=="x-hpmvmd-snapshot"{print $2}')
snap2=$(tr -d '\r' <"$TMP/h4" | awk -F': ' 'tolower($1)=="x-hpmvmd-snapshot"{print $2}')
if [ "$snap1" != "store" ]; then
    echo "serve-smoke: FAIL — first warm request snapshot disposition '$snap1', want store" >&2
    exit 1
fi
if [ "$snap2" != "hit" ]; then
    echo "serve-smoke: FAIL — divergent warm request snapshot disposition '$snap2', want hit" >&2
    exit 1
fi

sed 's/"key":"[^"]*"//' <"$TMP/r1" >"$TMP/n1"
sed 's/"key":"[^"]*"//' <"$TMP/r3" >"$TMP/n3"
sed 's/"key":"[^"]*"//' <"$TMP/r4" >"$TMP/n4"
if ! cmp -s "$TMP/n1" "$TMP/n3" || ! cmp -s "$TMP/n3" "$TMP/n4"; then
    echo "serve-smoke: FAIL — warm-started responses differ from the cold run" >&2
    exit 1
fi

stats=$(curl -sf "http://$ADDR/statsz")
if ! echo "$stats" | grep -A1 '"name": "serve.snapshot.stores"' | grep -q '"value": 1'; then
    echo "serve-smoke: FAIL — /statsz does not report the snapshot store" >&2
    exit 1
fi
if ! echo "$stats" | grep -A1 '"name": "serve.snapshot.hits"' | grep -q '"value": 1'; then
    echo "serve-smoke: FAIL — /statsz does not report the snapshot hit" >&2
    exit 1
fi

# Sampled estimate path: a sampled=true request answers with the
# Estimated block (extrapolated cycles + 95% CIs) and caches under its
# own content address — it must never alias the exact run's entry.
SAMPLED='{"workload":"compress","seed":1,"sampled":true}'
EXACT='{"workload":"compress","seed":1}'

echo "serve-smoke: sampled request"
curl -sf -D "$TMP/h5" -X POST -d "$SAMPLED" "http://$ADDR/run" -o "$TMP/r5"
curl -sf -D "$TMP/h6" -X POST -d "$EXACT" "http://$ADDR/run" -o /dev/null

if ! grep -q '"sampled":true' "$TMP/r5" || ! grep -q '"estimated":{' "$TMP/r5"; then
    echo "serve-smoke: FAIL — sampled response lacks the estimated block" >&2
    exit 1
fi
if ! grep -q '"cycles_lo":' "$TMP/r5"; then
    echo "serve-smoke: FAIL — sampled estimate carries no confidence interval" >&2
    exit 1
fi
skey=$(tr -d '\r' <"$TMP/h5" | awk -F': ' 'tolower($1)=="x-hpmvmd-key"{print $2}')
ekey=$(tr -d '\r' <"$TMP/h6" | awk -F': ' 'tolower($1)=="x-hpmvmd-key"{print $2}')
if [ -z "$skey" ] || [ "$skey" = "$ekey" ]; then
    echo "serve-smoke: FAIL — sampled request key '$skey' aliases the exact key '$ekey'" >&2
    exit 1
fi

# Sampled systems refuse Snapshot: the combination must bounce as 400.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -d '{"workload":"compress","seed":1,"sampled":true,"warm_start_cycles":1000000}' \
    "http://$ADDR/run")
if [ "$code" != "400" ]; then
    echo "serve-smoke: FAIL — sampled+warm_start_cycles answered $code, want 400" >&2
    exit 1
fi

echo "serve-smoke: draining"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: FAIL — daemon did not exit on SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$PID" 2>/dev/null || true

echo "serve-smoke: OK — cold=miss, replay=hit, warm=store then hit, sampled=estimated block at its own key, responses byte-identical, clean drain"
