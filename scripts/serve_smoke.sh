#!/bin/sh
# serve_smoke.sh — boot hpmvmd, run the client-based end-to-end checks
# (scripts/servesmoke, built on internal/client), then verify graceful
# SIGTERM shutdown. All protocol assertions — cache byte-identity,
# warm-start dispositions, sampled estimates, deprecation headers,
# stream reassembly, stable error codes — live in the Go checker; this
# wrapper only owns process lifecycle.
#
# Usage: scripts/serve_smoke.sh [port]   (default 18080)
set -eu

PORT="${1:-18080}"
ADDR="127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "serve-smoke: building hpmvmd + servesmoke"
go build -o "$TMP/hpmvmd" ./cmd/hpmvmd
go build -o "$TMP/servesmoke" ./scripts/servesmoke

"$TMP/hpmvmd" -addr "$ADDR" -cache 16 &
PID=$!

# Wait for liveness (the daemon calibrates every workload at startup).
i=0
until curl -sf "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: FAIL — daemon did not become healthy" >&2
        exit 1
    fi
    sleep 0.2
done

"$TMP/servesmoke" -url "http://$ADDR"

echo "serve-smoke: draining"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: FAIL — daemon did not exit on SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$PID" 2>/dev/null || true

echo "serve-smoke: OK — protocol checks passed, clean drain"
