// Keystone tests for the generalized online-optimization pipeline
// (internal/opt): the co-allocation port is byte-identical to the
// pre-framework policy, and the manager's assessment loop takes back
// injected regressing decisions for both managed kinds. `make
// verify-opt` runs exactly these two; the race CI target covers them
// through the root package.
package hpmvm_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"hpmvm/internal/bench"
	"hpmvm/internal/opt"
)

// TestOptCoallocByteIdentical pins the framework port of co-allocation
// against the recorded golden corpus: the genms-coalloc configuration —
// captured before the policy moved under the internal/opt manager —
// must reproduce bit-for-bit, while the result proves the run actually
// went through the framework (a per-kind counter row is present). Any
// divergence in charged cycles, sample placement, GC decisions or
// snapshot encoding fails here.
func TestOptCoallocByteIdentical(t *testing.T) {
	const cfgName = "genms-coalloc"
	for _, workload := range goldenWorkloads() {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			b, err := bench.Lookup(workload)
			if err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(goldenPath(workload))
			if err != nil {
				t.Fatalf("missing golden (run scripts/regen_goldens.sh): %v", err)
			}
			var want goldenFile
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden: %v", err)
			}
			wantE, ok := want.Configs[cfgName]
			if !ok {
				t.Fatalf("golden lacks the %s config — regenerate", cfgName)
			}

			var cfg bench.RunConfig
			for _, gc := range goldenConfigs() {
				if gc.Name == cfgName {
					cfg = gc.Cfg
				}
			}
			res, _, err := bench.Run(b, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := goldenEntry{
				Cycles:       res.Cycles,
				Instret:      res.Instret,
				ResultSHA256: resultFingerprint(res),
				ObsSHA256:    obsFingerprint(t, res),
			}
			snap, err := bench.RunPrefix(b, cfg, want.PauseCycles)
			if err != nil {
				t.Fatalf("prefix snapshot: %v", err)
			}
			sum := sha256.Sum256(snap)
			got.SnapSHA256 = hex.EncodeToString(sum[:])
			got.SnapshotBytes = len(snap)
			if got != wantE {
				t.Errorf("framework-managed coalloc diverges from the golden:\n got %+v\nwant %+v", got, wantE)
			}

			// The identical bytes must have been produced *through* the
			// framework: the manager reports exactly the coalloc kind.
			if len(res.Opt) != 1 || res.Opt[0].Kind != opt.KindCoalloc {
				t.Errorf("run did not report the managed coalloc kind: %+v", res.Opt)
			}
		})
	}
}

// TestOptRevertBadDecision injects a deliberately regressing decision
// into each managed optimization and requires the assessment loop to
// take it back within one assessment window — the revert is the FIRST
// verdict on the injected decision, never preceded by a "kept". This is
// the Figure 8 methodology (db, manual mid-run intervention) applied
// through the generic manager to both kinds.
func TestOptRevertBadDecision(t *testing.T) {
	t.Run("coalloc", func(t *testing.T) {
		b, err := bench.Lookup("db")
		if err != nil {
			t.Fatal(err)
		}
		res, sys, err := bench.Run(b, bench.RunConfig{
			Coalloc: true, GapAtCycle: bench.Fig8GapAtCycle, Interval: 2500, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ks := kindRow(t, res.Opt, opt.KindCoalloc)
		if ks.Reverts < 1 {
			t.Errorf("injected gap placement never reverted: %+v", ks)
		}
		// The revert must be the first verdict on the intervened field:
		// between the forced gap and the switch back there is no event
		// keeping the gapped placement.
		events := sys.Policy.Events()
		iIntervene, iRevert := -1, -1
		for i, e := range events {
			if iIntervene < 0 && strings.Contains(e, "manual intervention") {
				iIntervene = i
			}
			if iRevert < 0 && strings.Contains(e, "revert") {
				iRevert = i
			}
		}
		if iIntervene < 0 || iRevert < 0 || iRevert < iIntervene {
			t.Fatalf("expected intervention then revert; events:\n%s", strings.Join(events, "\n"))
		}
		for _, e := range events[iIntervene:iRevert] {
			if strings.Contains(e, "kept") {
				t.Errorf("gapped placement was kept before the revert; events:\n%s", strings.Join(events, "\n"))
			}
		}
	})

	t.Run("swprefetch", func(t *testing.T) {
		ks, log, err := bench.SwPrefetchRevertData(bench.ExpOptions{Seed: 1, Jobs: 2})
		if err != nil {
			t.Fatal(err)
		}
		if ks.Reverts < 1 {
			t.Errorf("injected polluting site set never reverted: %+v\nlog:\n%s", ks, strings.Join(log, "\n"))
		}
		// The polluting injection's revert must be its first assessment:
		// no "kept" verdict for that injection epoch between apply and
		// revert.
		iApply, iRevert := -1, -1
		var epoch string
		for i, l := range log {
			if iApply < 0 && strings.Contains(l, "polluting injection") {
				iApply = i
				if j := strings.Index(l, "injection #"); j >= 0 {
					epoch = strings.Fields(l[j+len("injection #"):])[0]
					epoch = strings.TrimSuffix(epoch, ":")
				}
			}
			if iApply >= 0 && iRevert < 0 && strings.Contains(l, "reverted") &&
				strings.Contains(l, "injection #"+epoch+" ") {
				iRevert = i
			}
		}
		if iApply < 0 || iRevert < 0 {
			t.Fatalf("expected polluting apply then revert; log:\n%s", strings.Join(log, "\n"))
		}
		for _, l := range log[iApply:iRevert] {
			if strings.Contains(l, "injection #"+epoch+" kept") {
				t.Errorf("polluting site set kept before the revert; log:\n%s", strings.Join(log, "\n"))
			}
		}
	})

	t.Run("codelayout", func(t *testing.T) {
		ks, log, err := bench.CodeLayoutRevertData(bench.ExpOptions{Seed: 1, Jobs: 2})
		if err != nil {
			t.Fatal(err)
		}
		if ks.Reverts < 1 {
			t.Errorf("injected conflict layout never reverted: %+v\nlog:\n%s", ks, strings.Join(log, "\n"))
		}
		// The conflict layout's revert must be its first assessment: no
		// "kept" verdict for that layout epoch between apply and revert.
		iApply, iRevert := -1, -1
		var epoch string
		for i, l := range log {
			if iApply < 0 && strings.Contains(l, "conflict layout") {
				iApply = i
				if j := strings.Index(l, "layout #"); j >= 0 {
					epoch = strings.Fields(l[j+len("layout #"):])[0]
					epoch = strings.TrimSuffix(epoch, ":")
				}
			}
			if iApply >= 0 && iRevert < 0 && strings.Contains(l, "reverted") &&
				strings.Contains(l, "layout #"+epoch+" ") {
				iRevert = i
			}
		}
		if iApply < 0 || iRevert < 0 {
			t.Fatalf("expected conflict apply then revert; log:\n%s", strings.Join(log, "\n"))
		}
		for _, l := range log[iApply:iRevert] {
			if strings.Contains(l, "layout #"+epoch+" kept") {
				t.Errorf("conflict layout kept before the revert; log:\n%s", strings.Join(log, "\n"))
			}
		}
	})
}

// TestSwPrefetchAblation pins the prefetch-injection acceptance bar
// under the default cache geometry: across the workload suite the
// active runs must never regress against the passive monitored
// baseline (identical detector, no injections — workloads where the
// optimizer declines to inject are byte-identical by construction),
// and on the full suite at least 3 workloads must show a measured
// cycle reduction. The race lane trims to the golden subset (where no
// injection fires) and checks only the no-regression half.
func TestSwPrefetchAblation(t *testing.T) {
	o := bench.ExpOptions{Seed: 1}
	trimmed := len(goldenRaceSubset) > 0
	if trimmed {
		o.Workloads = goldenRaceSubset
	}
	rows, err := bench.SwPrefetchData(o)
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for _, r := range rows {
		if r.ActiveCycles > r.PassiveCycles {
			t.Errorf("%s: prefetch injection regressed: %d cycles active vs %d passive (%d issued, %d epochs, %d reverts)",
				r.Program, r.ActiveCycles, r.PassiveCycles, r.SwPrefetches, r.Injections, r.Reverts)
		}
		if r.ActiveCycles < r.PassiveCycles {
			improved++
			if r.SwPrefetches == 0 {
				t.Errorf("%s: cycles improved with zero software prefetches issued — the delta is not attributable to injection", r.Program)
			}
		}
	}
	if !trimmed && improved < 3 {
		t.Errorf("prefetch injection improved only %d workloads, want >= 3:\n%+v", improved, rows)
	}
}

// kindRow extracts one kind's counter row from a result's Opt stats.
func kindRow(t *testing.T, rows []opt.KindStats, kind string) opt.KindStats {
	t.Helper()
	for _, k := range rows {
		if k.Kind == kind {
			return k
		}
	}
	t.Fatalf("no %s row in %+v", kind, rows)
	return opt.KindStats{}
}
