// Package hpmvm's top-level benchmarks regenerate the paper's tables
// and figures as Go benchmarks (one per table/figure, §6 of the
// paper). Each benchmark executes a reduced single-repetition version
// of the corresponding experiment and reports the headline quantities
// via b.ReportMetric; cmd/experiments runs the full-fidelity versions.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig4 -benchtime=1x
package hpmvm_test

import (
	"testing"
	"time"

	"hpmvm/internal/bench"
	_ "hpmvm/internal/bench/workloads"
	"hpmvm/internal/core"
)

// quickOpts restricts experiments to a representative workload subset
// so a full -bench=. sweep stays tractable; pass -timeout accordingly
// for the complete set via cmd/experiments.
func quickOpts() bench.ExpOptions {
	return bench.ExpOptions{
		Workloads: []string{"db", "compress", "javac", "hsqldb"},
		Reps:      1,
		Seed:      1,
	}
}

// BenchmarkTable2SpaceOverhead regenerates Table 2 (machine-code map
// space overhead) and reports aggregate map sizes.
func BenchmarkTable2SpaceOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2Data(bench.ExpOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		var code, gcm, mcm uint64
		for _, r := range rows {
			code += r.MachineCode
			gcm += r.GCMaps
			mcm += r.MCMaps
		}
		b.ReportMetric(float64(code), "codeKB")
		b.ReportMetric(float64(gcm), "gcMapKB")
		b.ReportMetric(float64(mcm), "mcMapKB")
		b.ReportMetric(float64(mcm)/float64(gcm), "mc/gc-ratio")
	}
}

// BenchmarkFig2SamplingOverhead regenerates Figure 2 (execution-time
// overhead of event sampling) on the quick subset and reports the mean
// overhead at the paper's auto interval.
func BenchmarkFig2SamplingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig2Data(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var sum25, sumAuto float64
		for _, r := range rows {
			sum25 += r.Overhead[0]
			sumAuto += r.Overhead[len(r.Overhead)-1]
		}
		b.ReportMetric(100*sum25/float64(len(rows)), "overhead25K-%")
		b.ReportMetric(100*sumAuto/float64(len(rows)), "overheadAuto-%")
	}
}

// BenchmarkFig3CoallocCounts regenerates Figure 3 (number of
// co-allocated objects per sampling interval).
func BenchmarkFig3CoallocCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig3Data(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Program == "db" {
				b.ReportMetric(float64(r.Pairs[0]), "db-pairs-25K")
				b.ReportMetric(float64(r.Pairs[2]), "db-pairs-100K")
			}
		}
	}
}

// BenchmarkFig4MissReduction regenerates Figure 4 (L1 miss reduction
// with co-allocation, heap 4x).
func BenchmarkFig4MissReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig4Data(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Program == "db" {
				b.ReportMetric(100*r.Reduction, "db-L1-reduction-%")
			}
			if r.Program == "compress" {
				b.ReportMetric(float64(r.Pairs), "compress-pairs")
			}
		}
	}
}

// BenchmarkFig5ExecTime regenerates Figure 5 (normalized execution
// time across heap sizes) for db only (the full grid runs in
// cmd/experiments).
func BenchmarkFig5ExecTime(b *testing.B) {
	opts := bench.ExpOptions{Workloads: []string{"db"}, Reps: 1, Seed: 1}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig5Data(opts)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(r.Normalized[0], "db-1x-normtime")
		b.ReportMetric(r.Normalized[len(r.Normalized)-1], "db-4x-normtime")
	}
}

// BenchmarkFig6GenCopyVsGenMS regenerates Figure 6 (db: GenCopy vs
// GenMS with co-allocation across heap sizes).
func BenchmarkFig6GenCopyVsGenMS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6Data(bench.ExpOptions{Reps: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0], rows[len(rows)-1]
		b.ReportMetric(100*(1-first.GenMSCo/first.GenCopy), "co-vs-gencopy-1x-%")
		b.ReportMetric(100*(1-last.GenMSCo/last.GenCopy), "co-vs-gencopy-4x-%")
	}
}

// BenchmarkFig7Feedback regenerates Figure 7 (db: cumulative misses and
// miss rate over time for String::value).
func BenchmarkFig7Feedback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		baseCum, coCum, rate, _, err := bench.Fig7Data(bench.ExpOptions{Reps: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(baseCum.Last(), "baseline-cum-misses")
		b.ReportMetric(coCum.Last(), "coalloc-cum-misses")
		b.ReportMetric(float64(rate.Len()), "periods")
	}
}

// BenchmarkFig8Revert regenerates Figure 8 (online detection of a poor
// placement decision and revert).
func BenchmarkFig8Revert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, events, err := bench.Fig8Data(bench.ExpOptions{Reps: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		reverts := 0
		for _, e := range events {
			if containsRevert(e) {
				reverts++
			}
		}
		b.ReportMetric(float64(reverts), "reverts")
		b.ReportMetric(float64(series.Len()), "periods")
	}
}

func containsRevert(s string) bool {
	for i := 0; i+6 <= len(s); i++ {
		if s[i:i+6] == "revert" {
			return true
		}
	}
	return false
}

// BenchmarkWorkloads runs each registered workload once at the default
// configuration (GenMS, heap 4x, no monitoring) and reports simulated
// cycles — the baseline execution-time table every figure normalizes
// against.
func BenchmarkWorkloads(b *testing.B) {
	for _, name := range bench.Names() {
		name := name
		builder, _ := bench.Get(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, _, err := bench.Run(builder, bench.RunConfig{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "simcycles")
				b.ReportMetric(float64(res.Cache.L1Misses), "L1misses")
			}
		})
	}
}

// BenchmarkCollectors compares GenMS and GenCopy end to end on db.
func BenchmarkCollectors(b *testing.B) {
	builder, _ := bench.Get("db")
	for _, kind := range []core.CollectorKind{core.GenMS, core.GenCopy} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, _, err := bench.Run(builder, bench.RunConfig{Collector: kind, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "simcycles")
			}
		})
	}
}

// BenchmarkSystemMcycles meters end-to-end simulation throughput: one
// full monitored-off run of each workload per iteration, reporting
// simulated megacycles per wall-clock second. This is the headline
// number the fast-path work moves (see DESIGN.md §11); track it across
// changes with `go test -bench BenchmarkSystemMcycles -benchtime=3x`.
func BenchmarkSystemMcycles(b *testing.B) {
	for _, name := range []string{"compress", "db", "jess"} {
		builder, ok := bench.Get(name)
		if !ok {
			b.Fatalf("workload %s not registered", name)
		}
		b.Run(name, func(b *testing.B) {
			var cycles, instret uint64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, _, err := bench.Run(builder, bench.RunConfig{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
				instret += res.Instret
			}
			secs := time.Since(start).Seconds()
			if secs > 0 {
				b.ReportMetric(float64(cycles)/1e6/secs, "Mcycles/s")
				b.ReportMetric(float64(instret)/1e6/secs, "Minstr/s")
			}
		})
	}
}
