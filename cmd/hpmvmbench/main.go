// Command hpmvmbench is the hpmvmd load generator: closed-loop
// concurrent clients driving a server (or fleet coordinator) through
// the typed internal/client, reporting p50/p99 latency and sustained
// RPS per traffic mix, with a byte-identity invariant checked on every
// single response.
//
// Usage:
//
//	hpmvmbench -url http://127.0.0.1:8080 -mix all -clients 64 -duration 10s -label workers=4
//
// Mixes:
//
//	cachehot    every client hammers one request: result-cache hit path
//	coldunique  every request is a unique seed: full simulation each time
//	warmsweep   one warm-start prefix, divergent cycle budgets: snapshot
//	            stickiness and prefix reuse
//	sampled     unique seeds with sampled=true: the two-lane estimator
//	mixed       1/2 cachehot, 1/4 coldunique, 1/8 sampled, 1/8 warmsweep
//
// Invariants (fatal when violated):
//
//   - Byte-identity: responses to an identical request body must be
//     byte-identical across the whole run, whichever worker served
//     them.
//   - Per-worker probe (fleet targets): the same request pinned to
//     every worker via X-Hpmvmd-Route must answer identical bytes.
//
// Results append/merge into -out as JSON (keyed by mix+label, so
// re-running a sweep replaces its own rows) and print as Go benchmark
// lines:
//
//	BenchmarkServe/cachehot/workers=4  1234  2.1 p50-ms  9.8 p99-ms  410.2 RPS
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hpmvm/internal/api"
	"hpmvm/internal/client"
)

var allMixes = []string{"cachehot", "coldunique", "warmsweep", "sampled", "mixed"}

type config struct {
	url      string
	mixes    []string
	clients  int
	duration time.Duration
	label    string
	workload string
	out      string
	minRPS   float64
	probe    bool
	note     string
}

// mixResult is one (mix,label) measurement row in the JSON report.
type mixResult struct {
	Mix            string  `json:"mix"`
	Label          string  `json:"label"`
	URL            string  `json:"url"`
	Workload       string  `json:"workload"`
	Clients        int     `json:"clients"`
	DurationS      float64 `json:"duration_s"`
	Completed      int     `json:"completed"`
	Errors         int     `json:"errors"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
	RPS            float64 `json:"rps"`
	BytesIdentical bool    `json:"bytes_identical"`
	ProbedWorkers  int     `json:"probed_workers,omitempty"`
	Stolen         uint64  `json:"stolen,omitempty"`
	Sticky         uint64  `json:"sticky,omitempty"`
}

// report is the BENCH_serve.json shape.
type report struct {
	Updated    string      `json:"updated"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Cores      int         `json:"cores"`
	Note       string      `json:"note,omitempty"`
	Results    []mixResult `json:"results"`
}

func main() {
	var cfg config
	var mixFlag string
	flag.StringVar(&cfg.url, "url", "http://127.0.0.1:8080", "server or coordinator base URL")
	flag.StringVar(&mixFlag, "mix", "all", `traffic mixes, comma-separated or "all"`)
	flag.IntVar(&cfg.clients, "clients", 64, "concurrent closed-loop clients")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "measurement window per mix")
	flag.StringVar(&cfg.label, "label", "", `row label merged on (mix,label), e.g. "workers=4"`)
	flag.StringVar(&cfg.workload, "workload", "compress", "workload driven by every mix")
	flag.StringVar(&cfg.out, "out", "", "JSON report to merge results into (empty = stdout only)")
	flag.Float64Var(&cfg.minRPS, "min-rps", 0, "exit nonzero if any mix sustains less than this")
	flag.BoolVar(&cfg.probe, "probe", true, "pin one request to every fleet worker and compare bytes")
	flag.StringVar(&cfg.note, "note", "", "free-form note recorded in the report")
	flag.Parse()

	if mixFlag == "all" {
		cfg.mixes = allMixes
	} else {
		cfg.mixes = strings.Split(mixFlag, ",")
	}
	valid := map[string]bool{}
	for _, m := range allMixes {
		valid[m] = true
	}
	for _, m := range cfg.mixes {
		if !valid[m] {
			fmt.Fprintf(os.Stderr, "hpmvmbench: unknown mix %q (have %s)\n", m, strings.Join(allMixes, ","))
			os.Exit(2)
		}
	}
	if cfg.label == "" {
		cfg.label = "default"
	}

	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hpmvmbench: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	c := client.New(client.Config{BaseURL: cfg.url, MaxRetries: 8, RetryBase: 50 * time.Millisecond})
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		return fmt.Errorf("target %s not healthy: %w", cfg.url, err)
	}

	// uniqueBase keeps coldunique seeds distinct across hpmvmbench
	// invocations, so repeated bench runs against a long-lived server
	// never degrade into cache hits.
	uniqueBase := time.Now().UnixNano() % 1_000_000_000

	var failures int
	var results []mixResult
	for _, mix := range cfg.mixes {
		res, err := runMix(ctx, cfg, c, mix, uniqueBase)
		if err != nil {
			return fmt.Errorf("mix %s: %w", mix, err)
		}
		uniqueBase += 1_000_000 // disjoint seed range per mix
		results = append(results, *res)
		fmt.Printf("BenchmarkServe/%s/%s \t%d\t%.2f p50-ms\t%.2f p99-ms\t%.1f RPS\n",
			mix, cfg.label, res.Completed, res.P50MS, res.P99MS, res.RPS)
		if !res.BytesIdentical {
			fmt.Fprintf(os.Stderr, "hpmvmbench: BYTE-IDENTITY VIOLATION in mix %s\n", mix)
			failures++
		}
		if cfg.minRPS > 0 && res.RPS < cfg.minRPS {
			fmt.Fprintf(os.Stderr, "hpmvmbench: mix %s sustained %.1f RPS < required %.1f\n", mix, res.RPS, cfg.minRPS)
			failures++
		}
	}

	if cfg.out != "" {
		if err := mergeReport(cfg, results); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
		fmt.Printf("merged %d rows into %s\n", len(results), cfg.out)
	}
	if failures > 0 {
		return fmt.Errorf("%d invariant/threshold failures", failures)
	}
	return nil
}

// requestFor builds the i-th request of a mix. Identical i across
// clients may repeat bodies (that is the point for cachehot); the
// byte-identity checker treats every distinct body independently.
func requestFor(cfg config, mix string, uniqueBase int64, i int64) api.Request {
	base := api.Request{Workload: cfg.workload, Version: api.Version}
	switch mix {
	case "cachehot":
		base.Seed = 1
	case "coldunique":
		base.Seed = uniqueBase + i
	case "warmsweep":
		base.Seed = 2
		base.Monitoring = true
		base.Interval = 25_000
		base.WarmStartCycles = 2_000_000
		// Divergent budgets far beyond any natural run length: distinct
		// result-cache keys sharing one snapshot prefix.
		base.MaxCycles = 4_000_000_000 + uint64(i%16)
	case "sampled":
		base.Seed = uniqueBase + i
		base.Sampled = true
	case "mixed":
		switch i % 8 {
		case 0, 1, 2, 3:
			return requestFor(cfg, "cachehot", uniqueBase, i)
		case 4, 5:
			return requestFor(cfg, "coldunique", uniqueBase, i)
		case 6:
			return requestFor(cfg, "sampled", uniqueBase, i)
		default:
			return requestFor(cfg, "warmsweep", uniqueBase, i)
		}
	}
	return base
}

// identityChecker enforces byte-identity: every response to the same
// request body must hash identically, across the run and across
// workers.
type identityChecker struct {
	mu   sync.Mutex
	seen map[string][32]byte
	ok   bool
}

func newIdentityChecker() *identityChecker {
	return &identityChecker{seen: make(map[string][32]byte), ok: true}
}

func (ic *identityChecker) check(req api.Request, body []byte) {
	key, _ := json.Marshal(req)
	sum := sha256.Sum256(body)
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if prev, dup := ic.seen[string(key)]; dup {
		if prev != sum {
			ic.ok = false
		}
		return
	}
	ic.seen[string(key)] = sum
}

func runMix(ctx context.Context, cfg config, c *client.Client, mix string, uniqueBase int64) (*mixResult, error) {
	ic := newIdentityChecker()
	var next atomic.Int64
	var errs atomic.Int64
	latencies := make([][]time.Duration, cfg.clients)

	// Routing counters delta: snapshot before/after when the target is
	// a coordinator.
	preStats, preFleet := fleetStats(ctx, c)

	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				req := requestFor(cfg, mix, uniqueBase, next.Add(1))
				t0 := time.Now()
				res, err := c.Run(ctx, req)
				if err != nil {
					errs.Add(1)
					continue
				}
				latencies[w] = append(latencies[w], time.Since(t0))
				ic.check(req, res.Body)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	res := &mixResult{
		Mix:            mix,
		Label:          cfg.label,
		URL:            cfg.url,
		Workload:       cfg.workload,
		Clients:        cfg.clients,
		DurationS:      elapsed.Seconds(),
		Completed:      len(all),
		Errors:         int(errs.Load()),
		BytesIdentical: ic.ok,
	}
	if len(all) > 0 {
		res.P50MS = float64(percentile(all, 0.50).Microseconds()) / 1000
		res.P99MS = float64(percentile(all, 0.99).Microseconds()) / 1000
		res.RPS = float64(len(all)) / elapsed.Seconds()
	}

	if post, postFleet := fleetStats(ctx, c); preFleet && postFleet {
		res.Stolen = post.Routing.Stolen - preStats.Routing.Stolen
		res.Sticky = post.Routing.Sticky - preStats.Routing.Sticky
		if cfg.probe {
			n, err := probeWorkers(ctx, cfg, post, ic)
			if err != nil {
				return nil, err
			}
			res.ProbedWorkers = n
			res.BytesIdentical = ic.ok
		}
	}
	return res, nil
}

// fleetStats fetches statsz and reports whether the target is a fleet
// coordinator.
func fleetStats(ctx context.Context, c *client.Client) (api.FleetStatsz, bool) {
	st, err := c.FleetStatsz(ctx)
	return st, err == nil && st.Fleet
}

// probeWorkers pins one cachehot-style request to every worker and
// feeds the responses through the identity checker: any worker
// answering different bytes for the same body trips the invariant.
func probeWorkers(ctx context.Context, cfg config, st api.FleetStatsz, ic *identityChecker) (int, error) {
	req := requestFor(cfg, "cachehot", 0, 0)
	probed := 0
	for _, w := range st.PerWorker {
		if !w.Healthy {
			continue
		}
		pc := client.New(client.Config{BaseURL: cfg.url, Route: w.Name, MaxRetries: 8, RetryBase: 50 * time.Millisecond})
		res, err := pc.Run(ctx, req)
		if err != nil {
			return probed, fmt.Errorf("probe worker %s: %w", w.Name, err)
		}
		if res.Worker != w.Name {
			return probed, fmt.Errorf("probe pinned to %s served by %q", w.Name, res.Worker)
		}
		ic.check(req, res.Body)
		probed++
	}
	return probed, nil
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// mergeReport loads cfg.out, replaces rows matching (mix,label) of the
// new results, and writes it back.
func mergeReport(cfg config, results []mixResult) error {
	var rep report
	if data, err := os.ReadFile(cfg.out); err == nil {
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("existing report %s is not valid JSON: %w", cfg.out, err)
		}
	}
	replaced := func(r mixResult) bool {
		for _, n := range results {
			if n.Mix == r.Mix && n.Label == r.Label {
				return true
			}
		}
		return false
	}
	kept := rep.Results[:0]
	for _, r := range rep.Results {
		if !replaced(r) {
			kept = append(kept, r)
		}
	}
	rep.Results = append(kept, results...)
	sort.Slice(rep.Results, func(i, j int) bool {
		if rep.Results[i].Mix != rep.Results[j].Mix {
			return rep.Results[i].Mix < rep.Results[j].Mix
		}
		return rep.Results[i].Label < rep.Results[j].Label
	})
	rep.Updated = time.Now().UTC().Format(time.RFC3339)
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Cores = runtime.NumCPU()
	if cfg.note != "" {
		rep.Note = cfg.note
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.out, append(data, '\n'), 0o644)
}
