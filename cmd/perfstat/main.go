// Command perfstat compares two Go-benchmark-format result files the
// way benchstat does: per-benchmark means with 95% confidence
// intervals and the delta between them, flagged as significant only
// when the intervals do not overlap. It understands both `go test
// -bench` output and the lines internal/bench's experiment pipeline
// records (results/BENCH_*.txt / results/BENCH_baseline.txt).
//
// Usage:
//
//	perfstat old.txt new.txt
//	perfstat -gate -metric Mcycles/s -threshold 3 results/BENCH_baseline.txt fresh.txt
//
// With -gate, perfstat exits 1 when any benchmark shows a
// statistically significant regression of the gated metric beyond
// -threshold percent — the `make perf-gate` CI check. Higher is better
// for throughput units (Mcycles/s, Minstr/s, MB/s); lower is better
// for everything else (ns/op, B/op, allocs/op).
//
// Exit codes: 0 success, 1 gated regression, 2 usage or parse error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"hpmvm/internal/stats"
)

// sample is one parsed benchmark line's value for one unit.
type sample struct {
	name string // benchmark name, -N GOMAXPROCS suffix stripped
	unit string
	val  float64
}

// benchLine matches "Benchmark<Name>[-procs] <N> <val> <unit> [<val> <unit>...]".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)((?:\s+[0-9.eE+-]+\s+\S+)+)\s*$`)

// procSuffix strips the "-8" GOMAXPROCS suffix `go test -bench` adds.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseFile extracts every (benchmark, unit, value) sample from a
// Go-benchmark-format file. Non-benchmark lines (goos/pkg headers,
// PASS, experiment prose) are skipped.
func parseFile(path string) ([]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []sample
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			out = append(out, sample{name: name, unit: fields[i+1], val: v})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// key identifies one metric series: a benchmark × unit pair.
type key struct{ name, unit string }

// group collects samples into per-(benchmark, unit) series.
func group(samples []sample) map[key][]float64 {
	out := make(map[key][]float64)
	for _, s := range samples {
		k := key{s.name, s.unit}
		out[k] = append(out[k], s.val)
	}
	return out
}

// higherIsBetter reports the improvement direction of a unit.
func higherIsBetter(unit string) bool {
	switch unit {
	case "Mcycles/s", "Minstr/s", "MB/s", "ops/s":
		return true
	}
	return false
}

// comparison is one benchmark×unit row of the report.
type comparison struct {
	key
	old, new    stats.Interval
	delta       float64 // percent change of the mean, improvement-positive sign preserved
	significant bool    // 95% CIs are disjoint
}

// compare joins the two files' series on (benchmark, unit); series
// present in only one file are skipped (there is nothing to compare).
func compare(oldS, newS map[key][]float64) []comparison {
	var rows []comparison
	for k, ov := range oldS {
		nv, ok := newS[k]
		if !ok {
			continue
		}
		c := comparison{key: k, old: stats.MeanCI95(ov), new: stats.MeanCI95(nv)}
		if c.old.Mean != 0 {
			c.delta = 100 * (c.new.Mean - c.old.Mean) / c.old.Mean
		}
		c.significant = c.new.Lo > c.old.Hi || c.new.Hi < c.old.Lo
		rows = append(rows, c)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].name != rows[j].name {
			return rows[i].name < rows[j].name
		}
		return rows[i].unit < rows[j].unit
	})
	return rows
}

// regressed reports whether a row is a gated regression: the change is
// statistically significant, in the bad direction for its unit, and
// larger than threshold percent.
func regressed(c comparison, threshold float64) bool {
	if !c.significant {
		return false
	}
	bad := c.delta < 0
	if !higherIsBetter(c.unit) {
		bad = c.delta > 0
	}
	if !bad {
		return false
	}
	d := c.delta
	if d < 0 {
		d = -d
	}
	return d > threshold
}

// render prints the benchstat-style table.
func render(w *os.File, rows []comparison) {
	fmt.Fprintf(w, "%-40s %10s %22s %22s %10s\n", "benchmark", "unit", "old", "new", "delta")
	for _, c := range rows {
		marker := "~"
		if c.significant {
			marker = fmt.Sprintf("%+.2f%%", c.delta)
		}
		fmt.Fprintf(w, "%-40s %10s %13.2f ±%6.2f %13.2f ±%6.2f %10s\n",
			strings.TrimPrefix(c.name, "Benchmark"), c.unit,
			c.old.Mean, c.old.Half, c.new.Mean, c.new.Half, marker)
	}
}

func main() {
	gate := flag.Bool("gate", false, "exit 1 on a statistically significant regression of -metric beyond -threshold percent")
	metric := flag.String("metric", "Mcycles/s", "unit the gate checks (other units are reported but never gate)")
	threshold := flag.Float64("threshold", 3, "minimum significant regression, in percent, that fails the gate")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: perfstat [-gate] [-metric unit] [-threshold pct] old.txt new.txt")
		os.Exit(2)
	}
	oldSamples, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfstat: %v\n", err)
		os.Exit(2)
	}
	newSamples, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfstat: %v\n", err)
		os.Exit(2)
	}
	if len(oldSamples) == 0 || len(newSamples) == 0 {
		fmt.Fprintf(os.Stderr, "perfstat: no benchmark lines parsed (old %d, new %d)\n", len(oldSamples), len(newSamples))
		os.Exit(2)
	}
	rows := compare(group(oldSamples), group(newSamples))
	render(os.Stdout, rows)
	if !*gate {
		return
	}
	failed := false
	for _, c := range rows {
		if c.unit == *metric && regressed(c, *threshold) {
			fmt.Fprintf(os.Stderr, "perfstat: REGRESSION %s %s: %.2f -> %.2f (%+.2f%%, CIs disjoint, threshold %.1f%%)\n",
				c.name, c.unit, c.old.Mean, c.new.Mean, c.delta, *threshold)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("perf-gate OK: no significant %s regression beyond %.1f%%\n", *metric, *threshold)
}
