package main

import (
	"path/filepath"
	"testing"
)

func mustParse(t *testing.T, name string) map[key][]float64 {
	t.Helper()
	samples, err := parseFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatalf("%s: no samples parsed", name)
	}
	return group(samples)
}

func TestParseFormats(t *testing.T) {
	g := mustParse(t, "baseline.txt")
	// go test -bench style line with -8 GOMAXPROCS suffix and two units.
	mc, ok := g[key{"BenchmarkSystemMcycles/compress", "Mcycles/s"}]
	if !ok {
		t.Fatalf("missing Mcycles/s series; have %v", g)
	}
	if len(mc) != 5 {
		t.Fatalf("Mcycles/s series has %d samples, want 5", len(mc))
	}
	if _, ok := g[key{"BenchmarkSystemMcycles/compress", "ns/op"}]; !ok {
		t.Fatal("ns/op unit not parsed from the same lines")
	}
	// experiment-pipeline tab-separated line.
	if _, ok := g[key{"BenchmarkFig2/db", "Mcycles/s"}]; !ok {
		t.Fatal("tab-separated experiment line not parsed")
	}
}

func TestCompareIdenticalNotSignificant(t *testing.T) {
	g := mustParse(t, "baseline.txt")
	for _, c := range compare(g, g) {
		if c.significant {
			t.Errorf("%v: identical series flagged significant", c.key)
		}
		if c.delta != 0 {
			t.Errorf("%v: identical series delta %f, want 0", c.key, c.delta)
		}
		if regressed(c, 3) {
			t.Errorf("%v: identical series gated as regression", c.key)
		}
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	oldG := mustParse(t, "baseline.txt")
	newG := mustParse(t, "regression.txt")
	rows := compare(oldG, newG)
	found := false
	for _, c := range rows {
		if c.key == (key{"BenchmarkSystemMcycles/compress", "Mcycles/s"}) {
			found = true
			if !c.significant {
				t.Errorf("regression fixture not significant: old %+v new %+v", c.old, c.new)
			}
			if !regressed(c, 3) {
				t.Errorf("regression fixture did not trip the gate: delta %.2f%%", c.delta)
			}
			if c.delta >= 0 {
				t.Errorf("throughput drop reported as delta %+.2f%%", c.delta)
			}
		}
	}
	if !found {
		t.Fatal("joined rows missing the compress Mcycles/s series")
	}
}

func TestNoiseWithinCIDoesNotGate(t *testing.T) {
	oldG := mustParse(t, "baseline.txt")
	newG := mustParse(t, "noise.txt")
	for _, c := range compare(oldG, newG) {
		if c.unit == "Mcycles/s" && regressed(c, 3) {
			t.Errorf("%v: overlapping-CI noise gated as regression (old %+v new %+v)", c.key, c.old, c.new)
		}
	}
}

func TestRegressedDirectionPerUnit(t *testing.T) {
	mk := func(unit string, oldMean, newMean float64) comparison {
		return comparison{
			key:         key{"BenchmarkX", unit},
			delta:       100 * (newMean - oldMean) / oldMean,
			significant: true,
		}
	}
	if !regressed(mk("Mcycles/s", 100, 80), 3) {
		t.Error("20% throughput drop should gate")
	}
	if regressed(mk("Mcycles/s", 100, 120), 3) {
		t.Error("throughput gain gated")
	}
	if !regressed(mk("ns/op", 100, 120), 3) {
		t.Error("20% latency increase should gate")
	}
	if regressed(mk("ns/op", 100, 80), 3) {
		t.Error("latency improvement gated")
	}
	if regressed(mk("Mcycles/s", 100, 98), 3) {
		t.Error("2% drop below the 3% threshold gated")
	}
}
