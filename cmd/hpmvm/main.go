// Command hpmvm runs one benchmark program on the simulated
// platform under a chosen configuration and reports execution
// statistics — the quickest way to poke at the system.
//
// Usage:
//
//	hpmvm -workload db
//	hpmvm -workload db -coalloc -interval 0 -heap 4.0
//	hpmvm -workload hsqldb -collector gencopy -v
//
// Exit codes: 0 success, 1 run failure (the simulation started and
// failed), 2 configuration error (unknown workload, invalid option
// combination — errors.Is core.ErrBadOptions / bench.ErrUnknownWorkload).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"hpmvm/internal/bench"
	_ "hpmvm/internal/bench/workloads"
	"hpmvm/internal/core"
	"hpmvm/internal/hw/cache"
	"hpmvm/internal/hw/cpu"
	"hpmvm/internal/vm/bytecode"
)

const (
	exitRunFailure  = 1
	exitConfigError = 2
)

// fail prints the error and exits with the config/run distinction.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "hpmvm: %v\n", err)
	if errors.Is(err, core.ErrBadOptions) || errors.Is(err, bench.ErrUnknownWorkload) {
		os.Exit(exitConfigError)
	}
	os.Exit(exitRunFailure)
}

func main() {
	workload := flag.String("workload", "db", "workload name (see -list)")
	list := flag.Bool("list", false, "list workloads and exit")
	heapf := flag.Float64("heap", 4.0, "heap size as a multiple of the workload's min heap")
	heapBytes := flag.Uint64("heap-bytes", 0, "explicit heap size in bytes (overrides -heap)")
	collector := flag.String("collector", "genms", "collector: genms or gencopy")
	monitoring := flag.Bool("monitor", false, "enable HPM sampling")
	interval := flag.Uint64("interval", 0, "sampling interval in events (0 = auto)")
	coalloc := flag.Bool("coalloc", false, "enable HPM-guided co-allocation (implies -monitor)")
	codelayout := flag.Bool("codelayout", false, "enable hot/cold code layout (implies -monitor; pair with -event l1i)")
	swprefetch := flag.Bool("swprefetch", false, "enable software prefetch injection (implies -monitor)")
	event := flag.String("event", "", "sampled event: l1 (default), l2, dtlb or l1i")
	gap := flag.Uint64("gap", 0, "pathological placement gap in bytes (Figure 8)")
	adaptive := flag.Bool("adaptive", false, "AOS recording mode instead of the all-opt plan")
	seed := flag.Int64("seed", 1, "PRNG seed")
	verbose := flag.Bool("v", false, "print monitor and GC detail")
	disasm := flag.String("disasm", "", "disassemble a method (\"Class::name\") instead of running")
	flag.Parse()

	if *list {
		for _, n := range bench.Names() {
			b, _ := bench.Get(n)
			fmt.Printf("%-11s %s\n", n, b().Description)
		}
		return
	}

	builder, err := bench.Lookup(*workload)
	if err != nil {
		fail(fmt.Errorf("%w (try -list)", err))
	}
	cfg := bench.RunConfig{
		HeapFactor: *heapf,
		Heap:       *heapBytes,
		Monitoring: *monitoring || *coalloc || *codelayout || *swprefetch,
		Interval:   *interval,
		Coalloc:    *coalloc,
		CodeLayout: *codelayout,
		SwPrefetch: *swprefetch,
		Gap:        *gap,
		Adaptive:   *adaptive,
		Seed:       *seed,
	}
	switch *collector {
	case "", "genms":
	case "gencopy":
		cfg.Collector = core.GenCopy
	default:
		fail(fmt.Errorf("%w: unknown collector %q (genms or gencopy)", core.ErrBadOptions, *collector))
	}
	switch *event {
	case "", "l1":
		cfg.Event = cache.EventL1Miss
	case "l2":
		cfg.Event = cache.EventL2Miss
	case "dtlb":
		cfg.Event = cache.EventDTLBMiss
	case "l1i":
		cfg.Event = cache.EventL1IMiss
	default:
		fail(fmt.Errorf("%w: unknown event %q (l1, l2, dtlb or l1i)", core.ErrBadOptions, *event))
	}
	if *disasm != "" {
		if err := disassemble(builder, *disasm); err != nil {
			fail(err)
		}
		return
	}

	res, sys, err := bench.Run(builder, cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("workload    %s (heap %d bytes, %s)\n", res.Program, res.HeapBytes, sys.VM.Collector.Name())
	fmt.Printf("results     %v\n", res.Results)
	fmt.Printf("cycles      %d\n", res.Cycles)
	fmt.Printf("instret     %d\n", res.Instret)
	fmt.Printf("CPI         %.2f\n", float64(res.Cycles)/float64(res.Instret))
	fmt.Printf("L1 misses   %d (%.3f/kinstr)\n", res.Cache.L1Misses, 1000*float64(res.Cache.L1Misses)/float64(res.Instret))
	fmt.Printf("L2 misses   %d\n", res.Cache.L2Misses)
	fmt.Printf("DTLB misses %d\n", res.Cache.TLBMisses)
	if cfg.SwPrefetch {
		fmt.Printf("sw prefetch %d issued, %d hits (accuracy %.1f%%)\n",
			res.Cache.SwPrefetches, res.Cache.SwPrefetchHits, 100*res.Cache.SwPrefetchAccuracy())
	}
	fmt.Printf("GC          %d minor, %d major (%d cycles)\n", res.MinorGCs, res.MajorGCs, res.GCCycles)
	if cfg.Coalloc {
		fmt.Printf("coalloc     %d pairs (fragmentation %.1f%%)\n", res.CoallocPairs, 100*res.Fragmentation)
	}
	for _, k := range res.Opt {
		fmt.Printf("opt         %s: %d decisions, %d reverts\n", k.Kind, k.Decisions, k.Reverts)
	}
	if cfg.Monitoring {
		ms := res.MonitorStats
		fmt.Printf("monitor     %d polls, %d samples (%d dropped), %d cycles\n",
			ms.Polls, ms.SamplesDecoded, ms.SamplesDropped, ms.MonitorCycles)
	}
	if *verbose {
		if sys.Monitor != nil {
			fmt.Println()
			fmt.Print(sys.Monitor.Report(10))
			for _, e := range sys.Monitor.PhaseEvents() {
				fmt.Printf("  %s\n", e)
			}
		}
		if sys.Policy != nil {
			fmt.Println("policy decisions:")
			for _, d := range sys.Policy.Decisions() {
				fmt.Printf("  %-24s %-9s pairs=%d reverts=%d\n", d.Field.QualifiedName(), d.Mode, d.Pairs, d.Reverts)
			}
			for _, e := range sys.Policy.Events() {
				fmt.Printf("  %s\n", e)
			}
		}
		if sys.CodeLayout != nil {
			fmt.Println("code layout log:")
			for _, l := range sys.CodeLayout.Log() {
				fmt.Printf("  %s\n", l)
			}
		}
		if sys.SwPrefetch != nil {
			fmt.Println("software prefetch log:")
			for _, l := range sys.SwPrefetch.Log() {
				fmt.Printf("  %s\n", l)
			}
		}
		if sys.AOS != nil {
			fmt.Print(sys.AOS.Report(10))
		}
	}
}

// disassemble boots the workload, compiles it with the default plan,
// and prints the bytecode and annotated machine code of one method.
func disassemble(builder bench.Builder, name string) error {
	prog := builder()
	sys := core.NewSystem(prog.U, core.Options{Seed: 1})
	if err := sys.Boot(bench.AllOptPlan(prog.U, 2), prog.Materialize); err != nil {
		return err
	}
	for _, m := range prog.U.Methods() {
		if m.QualifiedName() != name || m.Code == nil {
			continue
		}
		code := m.Code.(*bytecode.Code)
		fmt.Print(code.Disassemble())
		fmt.Println()
		for _, body := range sys.VM.Table.Bodies() {
			if body.Method != m || body.Obsolete {
				continue
			}
			kind := "baseline"
			if body.Opt {
				kind = "opt"
			}
			fmt.Printf("%s body [%#x,%#x), %d GC points, frame %d slots:\n",
				kind, body.Start, body.End, len(body.GCPoints), body.FrameSlots)
			for pc := body.Start; pc < body.End; pc += cpu.InstrBytes {
				in, _ := sys.VM.CPU.InstrAt(pc)
				bci := "      "
				if b, ok := body.BytecodeAt(pc); ok {
					bci = fmt.Sprintf("bci%3d", b)
				}
				gcMark := " "
				if gp := body.GCPointAt(pc); gp != nil {
					gcMark = "*"
				}
				fmt.Printf("  %#x %s %s %s\n", pc, bci, gcMark, in)
			}
		}
		return nil
	}
	// List candidates on miss.
	fmt.Fprintln(os.Stderr, "methods:")
	for _, m := range prog.U.Methods() {
		if m.Code != nil {
			fmt.Fprintf(os.Stderr, "  %s\n", m.QualifiedName())
		}
	}
	return fmt.Errorf("method %q not found", name)
}
