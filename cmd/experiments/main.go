// Command experiments regenerates the tables and figures of the
// paper's evaluation (§6). Each experiment prints the same rows or
// series the paper reports; EXPERIMENTS.md records the comparison.
//
// Runs fan out across a worker pool (the parallel experiment engine in
// internal/bench); every run owns its seed and its whole simulated
// machine, so the printed tables are byte-identical for any -jobs
// value.
//
// Usage:
//
//	experiments -exp fig4                 # one experiment
//	experiments -exp all                  # everything (slow)
//	experiments -exp fig5 -workloads db   # restrict the benchmark set
//	experiments -exp fig2 -reps 1         # fewer repetitions
//	experiments -exp all -jobs 8          # widen the worker pool
//	experiments -exp all -bench-json results/BENCH_experiments.json
//	experiments -exp none -metrics-json m.json -trace t.json
//	                                      # observability sweep only
//
// -metrics-json and -trace run an additional instrumented sweep (each
// workload once with the full monitoring + co-allocation stack and the
// observability layer attached) and write the per-workload counter
// snapshots and event traces as JSON. The sweep is additive: it never
// changes the experiments' stdout, and the observer is passive, so the
// captured runs' simulated cycle counts match unobserved runs exactly.
// -exp none skips the experiments, running only the sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hpmvm/internal/bench"
	_ "hpmvm/internal/bench/workloads"
)

// expRecord is one experiment's perf accounting in the -bench-json
// output.
type expRecord struct {
	Name            string  `json:"name"`
	Runs            int     `json:"runs"`
	WallSeconds     float64 `json:"wall_seconds"`
	RunSeconds      float64 `json:"run_seconds"` // summed per-run wall clock
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// Simulation throughput: total simulated volume over the summed
	// per-run wall clock (serial-equivalent, independent of -jobs).
	SimMcycles    float64 `json:"sim_mcycles"`
	SimMinstr     float64 `json:"sim_minstr"`
	McyclesPerSec float64 `json:"mcycles_per_sec"`
	MinstrPerSec  float64 `json:"minstr_per_sec"`
	// Metrics carries experiment-published headline numbers (e.g. the
	// warmstart experiment's warm_start_speedup).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchReport is the machine-readable perf record -bench-json writes.
type benchReport struct {
	Timestamp        string      `json:"timestamp"`
	GoMaxProcs       int         `json:"gomaxprocs"`
	Jobs             int         `json:"jobs"`
	Note             string      `json:"note"`
	Experiments      []expRecord `json:"experiments"`
	TotalRuns        int         `json:"total_runs"`
	TotalWallSeconds float64     `json:"total_wall_seconds"`
	TotalRunSeconds  float64     `json:"total_run_seconds"`
	SpeedupVsSerial  float64     `json:"speedup_vs_serial"`
	TotalSimMcycles  float64     `json:"total_sim_mcycles"`
	McyclesPerSec    float64     `json:"mcycles_per_sec"`
	MinstrPerSec     float64     `json:"minstr_per_sec"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(bench.ExperimentNames, ", ")+", or all")
	workloads := flag.String("workloads", "", "comma-separated workload filter (default: all)")
	reps := flag.Int("reps", 3, "repetitions for timing experiments")
	seed := flag.Int64("seed", 1, "base PRNG seed")
	jobs := flag.Int("jobs", 0, "parallel runs (0 = GOMAXPROCS); output is byte-identical for any value")
	benchJSON := flag.String("bench-json", "", "write per-experiment wall-clock and speedup JSON to this file")
	sampling := flag.Bool("sampling", false, "also run the sampled-simulation validation (estimated vs exact error and speedup; same as -exp sampling)")
	metricsJSON := flag.String("metrics-json", "", "run the observability sweep and write per-workload counter/phase snapshots to this file")
	traceFile := flag.String("trace", "", "run the observability sweep and write per-workload event traces to this file")
	progress := flag.Bool("progress", true, "live progress line on stderr")
	list := flag.Bool("list", false, "list registered workloads and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (after final GC) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}()
	}

	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}

	opt := bench.ExpOptions{Reps: *reps, Seed: *seed, Jobs: *jobs}
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}

	names := []string{*exp}
	switch *exp {
	case "all":
		names = bench.ExperimentNames
	case "none":
		// Observability-sweep-only mode: no experiments.
		names = nil
	}
	if *sampling {
		has := false
		for _, n := range names {
			has = has || n == "sampling"
		}
		if !has {
			names = append(names, "sampling")
		}
	}

	var totalSimCycles, totalSimInstret uint64
	report := benchReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "speedup_vs_serial = run_seconds/wall_seconds (summed per-run wall clock over " +
			"actual wall clock); accurate when jobs <= cores, inflated by CPU time-slicing " +
			"when the pool oversubscribes the machine",
	}
	for _, name := range names {
		runOpt := opt
		if *progress {
			name := name
			start := time.Now()
			runOpt.Progress = func(done, total int, label string) {
				fmt.Fprintf(os.Stderr, "\r\x1b[K[%s] %d/%d runs  %s  (%s)",
					name, done, total, label, time.Since(start).Round(time.Second))
			}
		}
		res, err := bench.RunExperimentFull(name, runOpt)
		if *progress {
			fmt.Fprint(os.Stderr, "\r\x1b[K")
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Output)
		// Go-benchmark format lines for the perf-data pipeline
		// (BenchmarkFig2/<workload> ... Mcycles/s), alongside the JSON.
		for _, line := range res.BenchLines {
			fmt.Println(line)
		}
		if len(res.BenchLines) > 0 {
			fmt.Println()
		}
		fmt.Printf("[%s completed in %v — %d runs, %v run time, jobs=%d, speedup %.2fx, %.1f Mcycles/s]\n\n",
			name, res.Elapsed.Round(time.Millisecond), res.Runs,
			res.RunTime.Round(time.Millisecond), res.Jobs, res.Speedup(), res.McyclesPerSec())

		report.Jobs = res.Jobs
		report.Experiments = append(report.Experiments, expRecord{
			Name:            name,
			Runs:            res.Runs,
			WallSeconds:     res.Elapsed.Seconds(),
			RunSeconds:      res.RunTime.Seconds(),
			SpeedupVsSerial: res.Speedup(),
			SimMcycles:      float64(res.SimCycles) / 1e6,
			SimMinstr:       float64(res.SimInstret) / 1e6,
			McyclesPerSec:   res.McyclesPerSec(),
			MinstrPerSec:    res.MinstrPerSec(),
			Metrics:         res.Metrics,
		})
		report.TotalRuns += res.Runs
		report.TotalWallSeconds += res.Elapsed.Seconds()
		report.TotalRunSeconds += res.RunTime.Seconds()
		totalSimCycles += res.SimCycles
		totalSimInstret += res.SimInstret
	}
	if report.TotalWallSeconds > 0 {
		report.SpeedupVsSerial = report.TotalRunSeconds / report.TotalWallSeconds
	}
	report.TotalSimMcycles = float64(totalSimCycles) / 1e6
	if report.TotalRunSeconds > 0 {
		report.McyclesPerSec = float64(totalSimCycles) / 1e6 / report.TotalRunSeconds
		report.MinstrPerSec = float64(totalSimInstret) / 1e6 / report.TotalRunSeconds
	}

	if *benchJSON != "" {
		if err := writeReport(*benchJSON, report); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bench-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *benchJSON)
	}

	if *metricsJSON != "" || *traceFile != "" {
		if err := runObsSweep(opt, *progress, *metricsJSON, *traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: obs sweep: %v\n", err)
			os.Exit(1)
		}
	}
}

// runObsSweep executes the instrumented workload sweep and writes the
// requested JSON exports.
func runObsSweep(opt bench.ExpOptions, progress bool, metricsPath, tracePath string) error {
	if progress {
		start := time.Now()
		opt.Progress = func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "\r\x1b[K[obs] %d/%d runs  %s  (%s)",
				done, total, label, time.Since(start).Round(time.Second))
		}
		defer fmt.Fprint(os.Stderr, "\r\x1b[K")
	}
	recs, err := bench.ObsSweep(opt)
	if err != nil {
		return err
	}
	write := func(path string, emit func(f *os.File) error) error {
		if dir := filepath.Dir(path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		return nil
	}
	if metricsPath != "" {
		if err := write(metricsPath, func(f *os.File) error {
			return bench.WriteObsMetricsJSON(f, recs)
		}); err != nil {
			return err
		}
	}
	if tracePath != "" {
		if err := write(tracePath, func(f *os.File) error {
			return bench.WriteObsTraceJSON(f, recs)
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeReport(path string, report benchReport) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
