// Command experiments regenerates the tables and figures of the
// paper's evaluation (§6). Each experiment prints the same rows or
// series the paper reports; EXPERIMENTS.md records the comparison.
//
// Runs fan out across a worker pool (the parallel experiment engine in
// internal/bench); every run owns its seed and its whole simulated
// machine, so the printed tables are byte-identical for any -jobs
// value.
//
// Usage:
//
//	experiments -exp fig4                 # one experiment
//	experiments -exp all                  # everything (slow)
//	experiments -exp fig5 -workloads db   # restrict the benchmark set
//	experiments -exp fig2 -reps 1         # fewer repetitions
//	experiments -exp all -jobs 8          # widen the worker pool
//	experiments -exp all -bench-json results/BENCH_experiments.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"hpmvm/internal/bench"
	_ "hpmvm/internal/bench/workloads"
)

// expRecord is one experiment's perf accounting in the -bench-json
// output.
type expRecord struct {
	Name            string  `json:"name"`
	Runs            int     `json:"runs"`
	WallSeconds     float64 `json:"wall_seconds"`
	RunSeconds      float64 `json:"run_seconds"` // summed per-run wall clock
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// benchReport is the machine-readable perf record -bench-json writes.
type benchReport struct {
	Timestamp        string      `json:"timestamp"`
	GoMaxProcs       int         `json:"gomaxprocs"`
	Jobs             int         `json:"jobs"`
	Note             string      `json:"note"`
	Experiments      []expRecord `json:"experiments"`
	TotalRuns        int         `json:"total_runs"`
	TotalWallSeconds float64     `json:"total_wall_seconds"`
	TotalRunSeconds  float64     `json:"total_run_seconds"`
	SpeedupVsSerial  float64     `json:"speedup_vs_serial"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(bench.ExperimentNames, ", ")+", or all")
	workloads := flag.String("workloads", "", "comma-separated workload filter (default: all)")
	reps := flag.Int("reps", 3, "repetitions for timing experiments")
	seed := flag.Int64("seed", 1, "base PRNG seed")
	jobs := flag.Int("jobs", 0, "parallel runs (0 = GOMAXPROCS); output is byte-identical for any value")
	benchJSON := flag.String("bench-json", "", "write per-experiment wall-clock and speedup JSON to this file")
	progress := flag.Bool("progress", true, "live progress line on stderr")
	list := flag.Bool("list", false, "list registered workloads and exit")
	flag.Parse()

	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}

	opt := bench.ExpOptions{Reps: *reps, Seed: *seed, Jobs: *jobs}
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}

	names := []string{*exp}
	if *exp == "all" {
		names = bench.ExperimentNames
	}

	report := benchReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "speedup_vs_serial = run_seconds/wall_seconds (summed per-run wall clock over " +
			"actual wall clock); accurate when jobs <= cores, inflated by CPU time-slicing " +
			"when the pool oversubscribes the machine",
	}
	for _, name := range names {
		runOpt := opt
		if *progress {
			name := name
			start := time.Now()
			runOpt.Progress = func(done, total int, label string) {
				fmt.Fprintf(os.Stderr, "\r\x1b[K[%s] %d/%d runs  %s  (%s)",
					name, done, total, label, time.Since(start).Round(time.Second))
			}
		}
		res, err := bench.RunExperimentFull(name, runOpt)
		if *progress {
			fmt.Fprint(os.Stderr, "\r\x1b[K")
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Output)
		fmt.Printf("[%s completed in %v — %d runs, %v run time, jobs=%d, speedup %.2fx]\n\n",
			name, res.Elapsed.Round(time.Millisecond), res.Runs,
			res.RunTime.Round(time.Millisecond), res.Jobs, res.Speedup())

		report.Jobs = res.Jobs
		report.Experiments = append(report.Experiments, expRecord{
			Name:            name,
			Runs:            res.Runs,
			WallSeconds:     res.Elapsed.Seconds(),
			RunSeconds:      res.RunTime.Seconds(),
			SpeedupVsSerial: res.Speedup(),
		})
		report.TotalRuns += res.Runs
		report.TotalWallSeconds += res.Elapsed.Seconds()
		report.TotalRunSeconds += res.RunTime.Seconds()
	}
	if report.TotalWallSeconds > 0 {
		report.SpeedupVsSerial = report.TotalRunSeconds / report.TotalWallSeconds
	}

	if *benchJSON != "" {
		if err := writeReport(*benchJSON, report); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bench-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *benchJSON)
	}
}

func writeReport(path string, report benchReport) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
