// Command experiments regenerates the tables and figures of the
// paper's evaluation (§6). Each experiment prints the same rows or
// series the paper reports; EXPERIMENTS.md records the comparison.
//
// Usage:
//
//	experiments -exp fig4                 # one experiment
//	experiments -exp all                  # everything (slow)
//	experiments -exp fig5 -workloads db   # restrict the benchmark set
//	experiments -exp fig2 -reps 1         # fewer repetitions
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hpmvm/internal/bench"
	_ "hpmvm/internal/bench/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(bench.ExperimentNames, ", ")+", or all")
	workloads := flag.String("workloads", "", "comma-separated workload filter (default: all)")
	reps := flag.Int("reps", 3, "repetitions for timing experiments")
	seed := flag.Int64("seed", 1, "base PRNG seed")
	list := flag.Bool("list", false, "list registered workloads and exit")
	flag.Parse()

	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}

	opt := bench.ExpOptions{Reps: *reps, Seed: *seed}
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}

	names := []string{*exp}
	if *exp == "all" {
		names = bench.ExperimentNames
	}
	for _, name := range names {
		start := time.Now()
		out, err := bench.RunExperiment(name, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
