// Command hpmvmd is the long-lived run service: an HTTP/JSON front end
// over the simulation stack with a deterministic result cache, bounded
// queue, per-request timeouts and graceful drain — as a single server
// or as a coordinator over a fleet of workers.
//
// Usage:
//
//	hpmvmd -addr :8080                 # single-process server
//	hpmvmd -addr :8080 -workers 4      # coordinator + 4 worker processes
//	hpmvmd -addr :8080 -workers 4 -fleet inprocess
//	curl -s -X POST -d '{"workload":"db","seed":1}' localhost:8080/v1/run
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/statsz
//
// With -workers N the process becomes a fleet coordinator: it forks N
// copies of itself in -worker mode (or, with -fleet inprocess, builds
// N in-process worker pools behind the same Backend interface), routes
// /v1/run requests with snapshot-sticky rendezvous hashing, steals
// overflow onto idle workers, restarts crashed workers, and aggregates
// every worker's statsz under /v1/statsz. Because runs are
// deterministic, a fleet of any size answers byte-identically to a
// single server.
//
// Endpoints (unversioned aliases remain and answer with a
// Deprecation header):
//
//	POST /v1/run       execute (or replay from cache) one benchmark run
//	POST /v1/stream    the same contract, streamed as Server-Sent Events
//	GET  /v1/healthz   liveness; 503 once draining
//	GET  /v1/statsz    cache hit rate, queue depth, per-workload latency
//	GET  /v1/workloads the registered workloads with calibration data
//
// On SIGTERM/SIGINT the server stops admitting runs, lets in-flight
// requests finish (bounded by -drain), then exits; a coordinator also
// forwards the signal to its workers and waits for them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hpmvm/internal/bench"
	_ "hpmvm/internal/bench/workloads"
	"hpmvm/internal/serve"
)

// options carries the parsed flags; the supervisor re-serializes the
// relevant subset onto its worker processes' command lines.
type options struct {
	addr         string
	jobs         int
	queue        int
	cacheEntries int
	timeout      time.Duration
	drain        time.Duration
	workers      int
	fleet        string
	worker       bool
	portFile     string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address (host:0 picks a free port)")
	flag.IntVar(&o.jobs, "jobs", 0, "per-server worker-pool width (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 64, "queued runs beyond the worker width before 429")
	flag.IntVar(&o.cacheEntries, "cache", 256, "result-cache capacity (entries)")
	flag.DurationVar(&o.timeout, "timeout", 2*time.Minute, "per-run wall-clock cap (0 = none)")
	flag.DurationVar(&o.drain, "drain", 30*time.Second, "graceful-drain budget on SIGTERM")
	flag.IntVar(&o.workers, "workers", 0, "fleet size; 0 serves single-process")
	flag.StringVar(&o.fleet, "fleet", "process", `fleet topology: "process" (forked workers) or "inprocess" (worker pools)`)
	flag.BoolVar(&o.worker, "worker", false, "run as a fleet worker (started by the coordinator)")
	flag.StringVar(&o.portFile, "port-file", "", "write the bound address to this file once listening")
	flag.Parse()

	prefix := "hpmvmd: "
	if o.worker {
		prefix = "hpmvmd[worker]: "
	}
	log.SetPrefix(prefix)
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	var err error
	switch {
	case o.worker || o.workers == 0:
		err = runSingle(o)
	case o.fleet == "inprocess":
		err = runInprocessFleet(o)
	case o.fleet == "process":
		err = runProcessFleet(o)
	default:
		err = fmt.Errorf("unknown -fleet topology %q", o.fleet)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s%v\n", prefix, err)
		os.Exit(1)
	}
}

// listen binds o.addr and publishes the bound address through
// o.portFile (atomically, so a polling supervisor never reads a
// partial write).
func listen(o options) (net.Listener, error) {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", o.addr, err)
	}
	if o.portFile != "" {
		tmp := o.portFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return nil, err
		}
		if err := os.Rename(tmp, o.portFile); err != nil {
			ln.Close()
			return nil, err
		}
	}
	return ln, nil
}

// serveUntilSignal serves handler on ln until SIGTERM/SIGINT, then
// runs drainFn and shuts the HTTP server down within the drain budget.
func serveUntilSignal(o options, ln net.Listener, handler http.Handler, drainFn func()) error {
	srv := &http.Server{Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	log.Printf("signal received, draining (budget %v)", o.drain)
	drainFn()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("drained cleanly")
	return nil
}

// runSingle is the classic topology (and the -worker role): one server
// process owning its engine, caches and queue.
func runSingle(o options) error {
	s := serve.New(serve.Config{
		Jobs:         o.jobs,
		QueueDepth:   o.queue,
		CacheEntries: o.cacheEntries,
		Timeout:      o.timeout,
	})
	ln, err := listen(o)
	if err != nil {
		return err
	}
	log.Printf("serving %d workloads on %s (jobs %d, queue %d, cache %d, timeout %v)",
		len(bench.Names()), ln.Addr(), o.jobs, o.queue, o.cacheEntries, o.timeout)
	return serveUntilSignal(o, ln, s.Handler(), s.Drain)
}

// runInprocessFleet is the coordinator with worker pools instead of
// worker processes: N independent servers (separate engines, caches,
// queues) behind the same Backend interface the process fleet uses.
func runInprocessFleet(o options) error {
	backends := make([]serve.Backend, o.workers)
	for i := range backends {
		s := serve.New(serve.Config{
			Jobs:         o.jobs,
			QueueDepth:   o.queue,
			CacheEntries: o.cacheEntries,
			Timeout:      o.timeout,
		})
		backends[i] = serve.NewLocalBackend(fmt.Sprintf("w%d", i), s)
	}
	f, err := serve.NewFleet(serve.FleetConfig{Backends: backends})
	if err != nil {
		return err
	}
	defer f.Close()
	ln, err := listen(o)
	if err != nil {
		return err
	}
	log.Printf("coordinating %d in-process workers on %s (%d workloads)",
		o.workers, ln.Addr(), len(bench.Names()))
	return serveUntilSignal(o, ln, f.Handler(), f.Drain)
}
