// Command hpmvmd is the long-lived run service: an HTTP/JSON front end
// over the simulation stack with a deterministic result cache, bounded
// queue, per-request timeouts and graceful drain.
//
// Usage:
//
//	hpmvmd -addr :8080
//	curl -s -X POST -d '{"workload":"db","seed":1}' localhost:8080/run
//	curl -s -X POST -d '{"workload":"db","seed":1,"sampled":true}' localhost:8080/run
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/statsz
//
// A sampled=true request runs the two-lane sampled simulator on the
// workload's calibrated region schedule and answers with an
// "estimated" block — extrapolated full-run metrics with 95%
// confidence intervals — cached under its own key, never aliasing the
// exact result. It cannot be combined with warm_start_cycles (sampled
// systems refuse Snapshot; the server answers 400).
//
// Endpoints:
//
//	POST /run       execute (or replay from cache) one benchmark run
//	GET  /healthz   liveness; 503 once draining
//	GET  /statsz    cache hit rate, queue depth, per-workload latency
//	GET  /workloads the registered workloads with calibration data
//
// On SIGTERM/SIGINT the server stops admitting runs, lets in-flight
// requests finish (bounded by -drain), then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hpmvm/internal/bench"
	_ "hpmvm/internal/bench/workloads"
	"hpmvm/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("jobs", 0, "worker-pool width (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "queued runs beyond the worker width before 429")
	cacheEntries := flag.Int("cache", 256, "result-cache capacity (entries)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-run wall-clock cap (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM")
	flag.Parse()

	log.SetPrefix("hpmvmd: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	s := serve.New(serve.Config{
		Jobs:         *jobs,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		Timeout:      *timeout,
	})
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %d workloads on %s (jobs %d, queue %d, cache %d, timeout %v)",
			len(bench.Names()), *addr, *jobs, *queue, *cacheEntries, *timeout)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	log.Printf("signal received, draining (budget %v)", *drain)
	s.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
		srv.Close()
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "hpmvmd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}
