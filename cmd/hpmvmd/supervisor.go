package main

// The process-fleet supervisor: fork N copies of this binary in
// -worker mode, wire each up as a client.Client backend, restart
// crashed workers on their original port (the coordinator's backend
// URLs are fixed at fleet construction), and translate the
// coordinator's SIGTERM into a coordinated drain of the whole tree.
//
// The handshake avoids port races: each worker is started with
// -addr 127.0.0.1:0 -port-file <dir>/wN.addr, binds a kernel-chosen
// free port, and atomically publishes the bound address; the
// supervisor polls the file, then health-checks the worker before
// admitting it to the fleet. Restarts reuse the published address —
// brief unavailability while the port rebinds is routed around by the
// fleet's health tracking.

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"hpmvm/internal/client"
	"hpmvm/internal/serve"
)

// workerProc is one supervised hpmvmd -worker process.
type workerProc struct {
	name     string
	addr     string // bound address, fixed after first start
	portFile string
	opts     options

	mu   sync.Mutex
	cmd  *exec.Cmd
	done bool // Stop was requested; don't restart
}

// args builds the worker's command line. First start binds :0 and
// publishes via the port file; restarts rebind the known address.
func (w *workerProc) args() []string {
	addr := w.addr
	a := []string{
		"-worker",
		"-jobs", fmt.Sprint(w.opts.jobs),
		"-queue", fmt.Sprint(w.opts.queue),
		"-cache", fmt.Sprint(w.opts.cacheEntries),
		"-timeout", w.opts.timeout.String(),
		"-drain", w.opts.drain.String(),
	}
	if addr == "" {
		a = append(a, "-addr", "127.0.0.1:0", "-port-file", w.portFile)
	} else {
		a = append(a, "-addr", addr)
	}
	return a
}

// start launches the worker process and, on first start, waits for the
// published address.
func (w *workerProc) start() error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locate own binary: %w", err)
	}
	cmd := exec.Command(exe, w.args()...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", w.name, err)
	}
	w.mu.Lock()
	w.cmd = cmd
	w.mu.Unlock()

	if w.addr != "" {
		return nil
	}
	// First start: poll for the handshake file.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(w.portFile)
		if err == nil {
			w.addr = strings.TrimSpace(string(data))
			return nil
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	return fmt.Errorf("%s never published its address via %s", w.name, w.portFile)
}

// supervise restarts the worker whenever it exits uncleanly, with a
// small backoff so a crash-looping worker cannot busy-spin the
// coordinator.
func (w *workerProc) supervise() {
	for {
		w.mu.Lock()
		cmd, done := w.cmd, w.done
		w.mu.Unlock()
		if done || cmd == nil {
			return
		}
		err := cmd.Wait()
		w.mu.Lock()
		done = w.done
		w.mu.Unlock()
		if done {
			return
		}
		log.Printf("%s exited (%v), restarting on %s", w.name, err, w.addr)
		time.Sleep(250 * time.Millisecond)
		if err := w.start(); err != nil {
			log.Printf("restart %s: %v (health loop will keep it marked down)", w.name, err)
			return
		}
	}
}

// stop sends SIGTERM (the worker drains itself) and waits it out.
func (w *workerProc) stop(budget time.Duration) {
	w.mu.Lock()
	w.done = true
	cmd := w.cmd
	w.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Signal(os.Interrupt)
	waited := make(chan struct{})
	go func() {
		cmd.Wait()
		close(waited)
	}()
	select {
	case <-waited:
	case <-time.After(budget):
		log.Printf("%s did not drain within %v, killing", w.name, budget)
		cmd.Process.Kill()
		<-waited
	}
}

// runProcessFleet is the coordinator over forked worker processes.
func runProcessFleet(o options) error {
	dir, err := os.MkdirTemp("", "hpmvmd-fleet-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	procs := make([]*workerProc, o.workers)
	backends := make([]serve.Backend, o.workers)
	for i := range procs {
		name := fmt.Sprintf("w%d", i)
		procs[i] = &workerProc{
			name:     name,
			portFile: filepath.Join(dir, name+".addr"),
			opts:     o,
		}
		if err := procs[i].start(); err != nil {
			for _, p := range procs[:i] {
				p.stop(time.Second)
			}
			return err
		}
		backends[i] = client.New(client.Config{
			BaseURL: "http://" + procs[i].addr,
			Name:    name,
			// The coordinator owns steal/backoff policy; a backend that
			// refuses must refuse immediately.
			MaxRetries: -1,
		})
	}

	// Wait until every worker answers healthz before opening the
	// coordinator's own listener.
	readyCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for i, b := range backends {
		for {
			err := b.(*client.Client).Healthz(readyCtx)
			if err == nil {
				break
			}
			if readyCtx.Err() != nil {
				for _, p := range procs {
					p.stop(time.Second)
				}
				return fmt.Errorf("worker %s on %s never became healthy: %v", procs[i].name, procs[i].addr, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	f, err := serve.NewFleet(serve.FleetConfig{Backends: backends})
	if err != nil {
		for _, p := range procs {
			p.stop(time.Second)
		}
		return err
	}
	defer f.Close()
	for _, p := range procs {
		go p.supervise()
	}

	ln, err := listen(o)
	if err != nil {
		for _, p := range procs {
			p.stop(time.Second)
		}
		return err
	}
	addrs := make([]string, len(procs))
	for i, p := range procs {
		addrs[i] = p.addr
	}
	log.Printf("coordinating %d worker processes on %s (workers: %s)",
		o.workers, ln.Addr(), strings.Join(addrs, ", "))

	serveErr := serveUntilSignal(o, ln, f.Handler(), func() {
		// Stop admitting at the edge first, then drain the tree: each
		// worker gets the signal and its own drain budget.
		f.Drain()
		var wg sync.WaitGroup
		for _, p := range procs {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.stop(o.drain)
			}()
		}
		wg.Wait()
	})
	return serveErr
}

// Assert the coordinator-side client keeps satisfying the fleet's
// Backend contract.
var _ serve.Backend = (*client.Client)(nil)
