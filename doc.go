// Package hpmvm reproduces "Online Optimizations Driven by Hardware
// Performance Monitoring" (Schneider, Payer, Gross; PLDI 2007) as a
// self-contained Go library: a simulated Pentium 4 with precise
// event-based sampling, a Java-like VM with two JIT compilers and
// machine-code maps, generational garbage collectors, and the
// HPM-guided object co-allocation optimization with its online
// feedback loop.
//
// See README.md for an overview, DESIGN.md for the architecture and
// substitution rationale, and EXPERIMENTS.md for reproduced results.
// The public entry point is internal/core.System; cmd/hpmvm and
// cmd/experiments are the command-line frontends.
package hpmvm
